package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// tinyCfg keeps shape tests fast; assertions are tolerant accordingly.
func tinyCfg() Config {
	return Config{
		AppScale: map[string]float64{"MD": 0.15, "KMEANS": 0.01, "BFS": 0.02},
	}
}

func TestRunAllShapeMD(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"MD"}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Machines {
		p1 := res.Proposal("MD", m.Name, 1)
		p2 := res.Proposal("MD", m.Name, 2)
		if p1 == nil || p2 == nil {
			t.Fatalf("%s: missing proposal points", m.Name)
		}
		if p1.Relative <= 1 {
			t.Errorf("%s: MD Proposal(1) should beat OpenMP, got %.2f", m.Name, p1.Relative)
		}
		if p2.Relative <= p1.Relative {
			t.Errorf("%s: MD should scale 1->2 GPUs: %.2f vs %.2f", m.Name, p1.Relative, p2.Relative)
		}
		// MD needs no inter-GPU communication (paper Table II text).
		if p2.Report.BytesP2P != 0 {
			t.Errorf("%s: MD moved %d P2P bytes", m.Name, p2.Report.BytesP2P)
		}
		// Fig 8: CPU-GPU transfers are what limits MD's scaling.
		if p2.Breakdown[1] <= p2.Breakdown[2] {
			t.Errorf("%s: MD breakdown should be CPU-GPU dominated: %+v", m.Name, p2.Breakdown)
		}
	}
	// The stock compiler bar exists and trails the hand-CUDA bar.
	cuda := res.find("MD", "Desktop Machine", "CUDA(1)")
	stock := res.find("MD", "Desktop Machine", "OpenACC(1)")
	if cuda == nil || stock == nil || cuda.Relative < stock.Relative {
		t.Errorf("CUDA(1) should be at least as fast as stock OpenACC(1)")
	}
}

func TestRunAllShapeBFSSupercomputer(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"BFS"}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p3 := res.Proposal("BFS", "Supercomputer Node", 3)
	if p3 == nil {
		t.Fatal("missing BFS Proposal(3)")
	}
	// The paper's signature result: BFS on the supercomputer node is
	// communication-bound and does not beat OpenMP.
	if p3.Relative >= 1 {
		t.Errorf("BFS@super Proposal(3) should trail OpenMP, got %.2f", p3.Relative)
	}
	if p3.Breakdown[0] <= 0 {
		t.Error("BFS@super must show GPU-GPU time")
	}
	// Fig 9: multi-GPU BFS carries visible System memory overhead but
	// far less than proportional User replication.
	if p3.MemSystem <= 0 {
		t.Error("BFS@super should report System memory")
	}
	if p3.MemUser >= 2.0 {
		t.Errorf("localaccess should prevent proportional replication, user = %.2f", p3.MemUser)
	}
}

func TestHeadline(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"MD"}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	head := res.Headline()
	if head["Desktop Machine"] <= 1 || head["Supercomputer Node"] <= 1 {
		t.Errorf("headline speedups should exceed 1: %v", head)
	}
}

func TestRenderOutputs(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"MD"}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	RenderTable1(&sb)
	RenderFig7(&sb, res)
	RenderFig8(&sb, res)
	RenderFig9(&sb, res)
	out := sb.String()
	for _, want := range []string{
		"Table I", "Desktop Machine", "Supercomputer Node",
		"Figure 7", "Proposal(2)", "Figure 8", "KERNELS", "Figure 9", "System",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestTable2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale input generation is slow")
	}
	rows, err := Table2(Config{AppScale: map[string]float64{"MD": 0.1, "KMEANS": 0.01, "BFS": 0.01}, Apps: []string{"MD"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].App != "MD" {
		t.Fatalf("rows = %+v", rows)
	}
	// Column A is measured at the paper's input size regardless of
	// the bench scale.
	if mb := float64(rows[0].DeviceMemBytes) / 1e6; mb < 35 || mb > 45 {
		t.Errorf("MD device memory = %.1f MB, want ~39.8", mb)
	}
	if rows[0].KernelExecs != 1 || rows[0].Loops != 1 {
		t.Errorf("MD B/C wrong: %+v", rows[0])
	}
	var sb strings.Builder
	RenderTable2(&sb, rows)
	if !strings.Contains(sb.String(), "MD") {
		t.Error("render missing row")
	}
}

func TestAblationsSubsetDirections(t *testing.T) {
	// Run only the cheap placement study via the public API by
	// filtering afterwards; Ablations runs everything, so use tiny
	// scales.
	cfg := tinyCfg()
	rows, err := Ablations(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(study, variant string) *AblationRow {
		for i := range rows {
			if rows[i].Study == study && strings.HasPrefix(rows[i].Variant, variant) {
				return &rows[i]
			}
		}
		t.Fatalf("missing ablation %s/%s", study, variant)
		return nil
	}
	if two, one := get("dirty-bits", "two-level"), get("dirty-bits", "single-level"); two.BytesP2P >= one.BytesP2P {
		t.Errorf("two-level should ship fewer P2P bytes: %d vs %d", two.BytesP2P, one.BytesP2P)
	}
	if d, r := get("placement", "distribution"), get("placement", "replica-only"); d.BytesH2D >= r.BytesH2D {
		t.Errorf("distribution should ship fewer H2D bytes: %d vs %d", d.BytesH2D, r.BytesH2D)
	}
	if tr, rm := get("layout-transform", "transformed"), get("layout-transform", "row-major"); tr.Total >= rm.Total {
		t.Errorf("transform should be faster: %v vs %v", tr.Total, rm.Total)
	}
	if red, ser := get("array-reduction", "reductiontoarray"), get("array-reduction", "serialized"); red.Total >= ser.Total {
		t.Errorf("reductiontoarray should beat serialization: %v vs %v", red.Total, ser.Total)
	}
	if sk, al := get("reload-skip", "skip"), get("reload-skip", "always"); sk.BytesH2D >= al.BytesH2D {
		t.Errorf("reload skip should reduce H2D: %d vs %d", sk.BytesH2D, al.BytesH2D)
	}
	var sb strings.Builder
	RenderAblations(&sb, rows)
	if !strings.Contains(sb.String(), "chunk") {
		t.Error("ablation render missing chunk study")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Seed == 0 || len(c.Apps) != 3 {
		t.Errorf("defaults wrong: %+v", c)
	}
	if s := c.scaleFor("MD"); s != defaultBenchScale["MD"] {
		t.Errorf("scaleFor(MD) = %g", s)
	}
	c2 := Config{Scale: 0.5, AppScale: map[string]float64{"MD": 0.4}}.withDefaults()
	if s := c2.scaleFor("MD"); s != 0.2 {
		t.Errorf("scaleFor with override = %g, want 0.2", s)
	}
}

func TestRunAllUnknownApp(t *testing.T) {
	if _, err := RunAll(Config{Apps: []string{"NOPE"}}); err == nil {
		t.Error("unknown app should fail")
	}
}

func TestClusterStudyShapes(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"MD", "BFS"}
	rows, err := ClusterStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]ClusterRow{}
	for _, r := range rows {
		byKey[r.App+"/"+r.Shape] = r
	}
	// BFS replica synchronization over the network must be slower than
	// keeping all GPUs in one node.
	if byKey["BFS/2x2"].Total <= byKey["BFS/1x3"].Total {
		t.Errorf("BFS across nodes should be slower: 1x3=%v 2x2=%v",
			byKey["BFS/1x3"].Total, byKey["BFS/2x2"].Total)
	}
	if !byKey["BFS/2x2"].NetP2P {
		t.Error("BFS on a cluster must move GPU-GPU bytes over the network")
	}
	// MD moves no GPU-GPU bytes anywhere.
	if byKey["MD/2x2"].NetP2P {
		t.Error("MD must not produce network GPU-GPU traffic")
	}
	var sb strings.Builder
	RenderCluster(&sb, rows)
	if !strings.Contains(sb.String(), "2x2") {
		t.Error("render missing shapes")
	}
}

func TestWriteJSON(t *testing.T) {
	cfg := tinyCfg()
	cfg.Apps = []string{"MD"}
	res, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteJSON(&sb, res, nil, nil, nil, nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	var doc JSONDocument
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.Figures) == 0 || doc.Headline["Desktop Machine"] <= 1 {
		t.Errorf("document incomplete: %+v", doc.Headline)
	}
	for _, p := range doc.Figures {
		if p.Report.TotalUS <= 0 {
			t.Errorf("%s/%s: missing report", p.Machine, p.Version)
		}
	}
	// Nil sections serialize fine.
	sb.Reset()
	if err := WriteJSON(&sb, nil, nil, nil, nil, nil, nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncStudyShapes pins the BENCH_PR6 study: every example app
// must satisfy the equivalence contract, the overlapped makespan must
// never exceed the synchronous total, and the halo-carrying stencil
// must show a real win.
func TestAsyncStudyShapes(t *testing.T) {
	rows, err := AsyncStudy(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want the 5 example apps", len(rows))
	}
	byApp := map[string]AsyncRow{}
	for _, r := range rows {
		byApp[r.App] = r
		if !r.Equivalent {
			t.Errorf("%s: async report diverged from sync modulo time", r.App)
		}
		// The overlapped makespan must not lose ground. One exception,
		// allowed a 0.1% tolerance: the async timeline serializes a
		// reduction merge's collect -> broadcast round-trip honestly,
		// while the synchronous estimate prices both directions as a
		// single concurrent batch (kmeans pays a fraction of a
		// microsecond for that honesty).
		if r.AsyncUS > r.SyncUS*1.001 {
			t.Errorf("%s: overlapped makespan %.1fus exceeds the synchronous total %.1fus",
				r.App, r.AsyncUS, r.SyncUS)
		}
	}
	if st := byApp["stencil1d"]; st.Speedup < 1.01 {
		t.Errorf("stencil1d: pipelining recovered nothing (speedup %.3fx)", st.Speedup)
	}
	var sb strings.Builder
	RenderAsync(&sb, rows)
	if !strings.Contains(sb.String(), "stencil1d") {
		t.Error("async render missing rows")
	}
}
