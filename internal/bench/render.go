package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// RenderTable1 prints the machine settings (paper Table I).
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I — machine settings for the evaluation")
	fmt.Fprintln(w, strings.Repeat("-", 72))
	for _, m := range machines() {
		fmt.Fprintf(w, "%s\n", m.Name)
		fmt.Fprintf(w, "  CPU   %s (%.1f eff. GFLOPS, %.0f GB/s)\n", m.CPU.Name, m.CPU.GFLOPS, m.CPU.MemGBs)
		fmt.Fprintf(w, "  GPUs  %s x%d (%.0f eff. GFLOPS, %.0f GB/s, %.0f GiB)\n",
			m.GPU.Name, m.NumGPUs, m.GPU.GFLOPS, m.GPU.MemGBs, float64(m.GPU.MemBytes)/float64(sim.GiB))
		peer := "host-staged (no peer path)"
		if m.Bus.PeerGBs > 0 {
			peer = fmt.Sprintf("%.1f GB/s peer DMA", m.Bus.PeerGBs)
		}
		fmt.Fprintf(w, "  Bus   %.1f GB/s per host link (concurrency %.2f), GPU-GPU: %s\n",
			m.Bus.HostLinkGBs, m.Bus.HostConcurrency, peer)
	}
}

// Table2Row is one application's characteristics (paper Table II).
type Table2Row struct {
	App, Suite, Description, Input string
	// DeviceMemBytes is column A at the paper's input size.
	DeviceMemBytes int64
	// Loops is column B; KernelExecs column C.
	Loops, KernelExecs int
	// LocalArrays/LoopArrays are column D.
	LocalArrays, LoopArrays int
}

// Table2 measures the application characteristics. Column A is
// evaluated at the paper's full input size; column C is counted from a
// functional run at the bench scale (it is scale independent for these
// apps).
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	var rows []Table2Row
	for _, name := range cfg.Apps {
		app, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(app.Source)
		if err != nil {
			return nil, err
		}
		stats := prog.Stats()

		full, err := app.Generate(1.0, cfg.Seed)
		if err != nil {
			return nil, err
		}
		memBytes, err := core.DeviceMemoryUsage(prog, full.Bindings)
		if err != nil {
			return nil, err
		}

		in, err := app.Generate(cfg.scaleFor(app.Name), cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := prog.Run(in.Bindings, core.Config{Machine: sim.Desktop().WithGPUs(1)})
		if err != nil {
			return nil, err
		}

		rows = append(rows, Table2Row{
			App: app.Name, Suite: app.Suite, Description: app.Description, Input: app.PaperInput,
			DeviceMemBytes: memBytes,
			Loops:          stats.ParallelLoops,
			KernelExecs:    res.Report.KernelLaunches,
			LocalArrays:    stats.LocalAccessArrays,
			LoopArrays:     stats.ArraysInLoops,
		})
	}
	return rows, nil
}

// RenderTable2 prints Table II.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II — application characteristics")
	fmt.Fprintln(w, "A: device memory (single GPU, paper-scale input); B: parallel loops;")
	fmt.Fprintln(w, "C: kernel executions; D: localaccess arrays / arrays in parallel loops")
	fmt.Fprintln(w, strings.Repeat("-", 80))
	fmt.Fprintf(w, "%-8s %-8s %-16s %-12s %9s %3s %4s %5s\n",
		"App", "Source", "Description", "Input", "A", "B", "C", "D")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-8s %-16s %-12s %7.1fMB %3d %4d %2d/%d\n",
			r.App, r.Suite, r.Description, r.Input,
			float64(r.DeviceMemBytes)/1e6, r.Loops, r.KernelExecs, r.LocalArrays, r.LoopArrays)
	}
}

// RenderFig7 prints the relative-performance chart (paper Fig. 7).
func RenderFig7(w io.Writer, res *Results) {
	fmt.Fprintln(w, "Figure 7 — performance relative to the OpenMP versions")
	for _, m := range res.Machines {
		fmt.Fprintf(w, "\n%s\n%s\n", m.Name, strings.Repeat("-", 64))
		for _, app := range res.Config.Apps {
			var parts []string
			for _, p := range res.Points {
				if p.App != app || p.Machine != m.Name {
					continue
				}
				parts = append(parts, fmt.Sprintf("%s %.2fx", p.Version, p.Relative))
			}
			fmt.Fprintf(w, "  %-7s %s\n", app, strings.Join(parts, "  "))
		}
	}
}

// RenderFig8 prints the execution-time breakdown (paper Fig. 8):
// GPU-GPU / CPU-GPU / KERNELS, normalized to the single-GPU total.
func RenderFig8(w io.Writer, res *Results) {
	fmt.Fprintln(w, "Figure 8 — execution time breakdown, normalized to 1-GPU total")
	for _, m := range res.Machines {
		fmt.Fprintf(w, "\n%s\n%s\n", m.Name, strings.Repeat("-", 64))
		fmt.Fprintf(w, "  %-7s %-12s %8s %8s %8s %8s\n", "App", "Version", "GPU-GPU", "CPU-GPU", "KERNELS", "TOTAL")
		for _, app := range res.Config.Apps {
			for _, p := range res.Points {
				if p.App != app || p.Machine != m.Name || p.Mode != rt.ModeMultiGPU {
					continue
				}
				total := p.Breakdown[0] + p.Breakdown[1] + p.Breakdown[2]
				fmt.Fprintf(w, "  %-7s %-12s %8.3f %8.3f %8.3f %8.3f\n",
					app, p.Version, p.Breakdown[0], p.Breakdown[1], p.Breakdown[2], total)
			}
		}
	}
}

// RenderFig9 prints the device-memory usage (paper Fig. 9): User and
// System bytes summed over GPUs, normalized to the 1-GPU user bytes.
func RenderFig9(w io.Writer, res *Results) {
	fmt.Fprintln(w, "Figure 9 — device memory usage, normalized to 1-GPU user data")
	for _, m := range res.Machines {
		fmt.Fprintf(w, "\n%s\n%s\n", m.Name, strings.Repeat("-", 64))
		fmt.Fprintf(w, "  %-7s %-12s %8s %8s %8s\n", "App", "Version", "User", "System", "Total")
		for _, app := range res.Config.Apps {
			for _, p := range res.Points {
				if p.App != app || p.Machine != m.Name || p.Mode != rt.ModeMultiGPU {
					continue
				}
				fmt.Fprintf(w, "  %-7s %-12s %8.3f %8.3f %8.3f\n",
					app, p.Version, p.MemUser, p.MemSystem, p.MemUser+p.MemSystem)
			}
		}
	}
}

// Headline extracts the abstract's headline numbers: the best
// Proposal speedup on each platform.
func (r *Results) Headline() map[string]float64 {
	best := map[string]float64{}
	for _, p := range r.Points {
		if p.Mode != rt.ModeMultiGPU {
			continue
		}
		if p.Relative > best[p.Machine] {
			best[p.Machine] = p.Relative
		}
	}
	return best
}

// SortedApps returns the sweep's applications in canonical order.
func (r *Results) SortedApps() []string {
	out := append([]string(nil), r.Config.Apps...)
	sort.Strings(out)
	return out
}
