package bench

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// The node study (BENCH_PR10.json): the shipped example programs run on
// cluster topologies under both schedules. Two questions per row: how
// much does crossing the network cost each app (the §VI future-work
// cliff, now with a real network model — NIC bandwidth and latency
// distinct from PCIe), and how much of that cost does the NIC-aware
// async scheduler hide by overlapping network pushes under kernels. The
// 1x3 shape is the degenerate-topology control: it must reproduce the
// flat supercomputer node exactly, so its rows double as a cross-check
// that the node dimension is free when unused.

// NodeRow is one example app on one cluster shape, sync vs async.
type NodeRow struct {
	// App is the example name (quickstart, md, kmeans, bfs, stencil1d).
	App string
	// Shape is the topology (nodes x GPUs-per-node, e.g. "2x2").
	Shape string
	// Nodes and GPUs identify the platform size.
	Nodes, GPUs int
	// SyncUS and AsyncUS are the reported simulated totals in
	// microseconds under the bulk-synchronous and pipelined schedules.
	SyncUS, AsyncUS float64
	// Speedup is SyncUS / AsyncUS.
	Speedup float64
	// Equivalent records that the two reports matched modulo time —
	// the differential contract the fuzz harness enforces, re-checked
	// here on every topology.
	Equivalent bool
}

// NodeStudy measures every example on each cluster shape under both
// schedules.
func NodeStudy(cfg Config) ([]NodeRow, error) {
	dir, err := examplesDir()
	if err != nil {
		return nil, err
	}
	shapes := []struct {
		label string
		spec  sim.MachineSpec
	}{
		{"1x3", sim.Cluster(1, 3)},
		{"2x2", sim.Cluster(2, 2)},
		{"2x3", sim.Cluster(2, 3)},
	}
	var rows []NodeRow
	for _, wl := range asyncWorkloads() {
		src, err := exampleSource(dir, wl.name)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", wl.name, err)
		}
		for _, sh := range shapes {
			run := func(opts rt.Options) (*rt.Report, error) {
				res, err := prog.Run(wl.bind(), core.Config{Machine: sh.spec, Options: opts})
				if err != nil {
					return nil, fmt.Errorf("bench: %s on %s: %w", wl.name, sh.label, err)
				}
				return res.Report, nil
			}
			syncRep, err := run(rt.Options{})
			if err != nil {
				return nil, err
			}
			asyncRep, err := run(rt.Options{Async: true})
			if err != nil {
				return nil, err
			}
			us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
			row := NodeRow{
				App: wl.name, Shape: sh.label,
				Nodes: sh.spec.NodeCount(), GPUs: sh.spec.NumGPUs,
				SyncUS: us(syncRep.Total()), AsyncUS: us(asyncRep.Total()),
				Equivalent: reflect.DeepEqual(asyncNormalize(syncRep), asyncNormalize(asyncRep)),
			}
			if row.AsyncUS > 0 {
				row.Speedup = row.SyncUS / row.AsyncUS
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderNode prints the study as text.
func RenderNode(w io.Writer, rows []NodeRow) {
	fmt.Fprintln(w, "Node study — cluster topologies, sync vs NIC-aware async (example apps)")
	fmt.Fprintf(w, "  %-12s %-6s %6s %12s %12s %8s  %s\n",
		"app", "shape", "gpus", "sync us", "async us", "speedup", "equivalent")
	last := ""
	for _, r := range rows {
		app := r.App
		if app == last {
			app = ""
		} else if last != "" {
			fmt.Fprintln(w)
		}
		last = r.App
		fmt.Fprintf(w, "  %-12s %-6s %6d %12.1f %12.1f %7.2fx  %v\n",
			app, r.Shape, r.GPUs, r.SyncUS, r.AsyncUS, r.Speedup, r.Equivalent)
	}
}
