package bench

import (
	"fmt"
	"io"
	"reflect"
	"time"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// AppStudy is the PR-8 evaluation: per-application Phase-B wall clock
// with the specialized executors (and cross-kernel launch fusion) on
// versus the instrumented interpreter, on the paper's three
// applications plus two synthetic controls. Like the wallclock study
// it measures *real* elapsed host time — here restricted to the kernel
// fan-out phase, where the fast path lives — and asserts that the
// simulated-time report is bit-identical between the two
// configurations: specialization and fusion may move wall clock only,
// never results or accounting.

// AppStudyRow is one workload's measurement.
type AppStudyRow struct {
	// Name identifies the workload ("MD", "KMEANS", "BFS",
	// "STENCIL-REPL", "SAXPY").
	Name string
	// Desc summarizes the input.
	Desc string
	// Runs is the measurement repetition count (best-of).
	Runs int
	// InterpMS and SpecMS are best-of-Runs Phase-B wall milliseconds
	// under the interpreter and the specialized executors.
	InterpMS, SpecMS float64
	// Speedup is InterpMS / SpecMS.
	Speedup float64
	// FusedLaunches is how many adjacent launch pairs executed fused
	// in the specialized configuration's best run.
	FusedLaunches int
	// Invariant records that the two configurations produced
	// bit-identical simulated-time Reports.
	Invariant bool
}

// appStudySaxpySrc is the streaming control: a single trivially
// specialized kernel, iterated so launch overheads amortize.
const appStudySaxpySrc = `
int n, steps;
double a;
double x[n], y[n];
void main() {
    int i, s;
    #pragma acc data copyin(x) copy(y)
    {
        for (s = 0; s < steps; s++) {
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                y[i] = a * x[i] + y[i];
            }
        }
    }
}
`

// appStudyFusedSrc is the launch-fusion control: two adjacent
// independent kernels iterated inside a data region, so every warm
// step executes as one fused fan-out.
const appStudyFusedSrc = `
int n, steps, t;
float a[n], b[n], c[n], d[n];
void main() {
    int i;
    #pragma acc data copyin(a, b) copy(c, d)
    {
        t = 0;
        while (t < steps) {
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                c[i] = 2.0 * a[i] + c[i];
            }
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                d[i] = b[i] * b[i] + d[i] * 0.5;
            }
            t = t + 1;
        }
    }
}
`

type appStudyLoad struct {
	name, desc string
	run        func(opts rt.Options) (*rt.Report, time.Duration, int, error)
}

func appStudyAppLoad(cfg Config, name string, spec sim.MachineSpec) (appStudyLoad, error) {
	app, err := apps.ByName(name)
	if err != nil {
		return appStudyLoad{}, err
	}
	prog, err := core.Compile(app.Source)
	if err != nil {
		return appStudyLoad{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	scale := cfg.scaleFor(name)
	return appStudyLoad{
		name: name,
		desc: fmt.Sprintf("paper app, %.2gx input", scale),
		run: func(opts rt.Options) (*rt.Report, time.Duration, int, error) {
			in, err := app.Generate(scale, cfg.Seed)
			if err != nil {
				return nil, 0, 0, err
			}
			res, err := prog.Run(in.Bindings, core.Config{Machine: spec, Options: opts})
			if err != nil {
				return nil, 0, 0, err
			}
			if cfg.Verify {
				if err := in.Verify(res.Instance); err != nil {
					return nil, 0, 0, fmt.Errorf("bench: %s: %w", name, err)
				}
			}
			return res.Report, res.Runtime.PhaseBWall(), res.Runtime.FusedLaunches(), nil
		},
	}, nil
}

func appStudySynthetic(name, desc, src string, spec sim.MachineSpec, bind func(prog *core.Program) *ir.Bindings) (appStudyLoad, error) {
	prog, err := core.Compile(src)
	if err != nil {
		return appStudyLoad{}, fmt.Errorf("bench: %s: %w", name, err)
	}
	return appStudyLoad{
		name: name,
		desc: desc,
		run: func(opts rt.Options) (*rt.Report, time.Duration, int, error) {
			res, err := prog.Run(bind(prog), core.Config{Machine: spec, Options: opts})
			if err != nil {
				return nil, 0, 0, err
			}
			return res.Report, res.Runtime.PhaseBWall(), res.Runtime.FusedLaunches(), nil
		},
	}, nil
}

// AppStudy measures every workload under both configurations,
// best-of-3, and checks report invariance.
func AppStudy(cfg Config) ([]AppStudyRow, error) {
	cfg = cfg.withDefaults()
	spec := sim.Desktop()
	var loads []appStudyLoad
	for _, name := range cfg.Apps {
		wl, err := appStudyAppLoad(cfg, name, spec)
		if err != nil {
			return nil, err
		}
		loads = append(loads, wl)
	}
	const stencilN, stencilSteps = 1 << 18, 8
	st, err := appStudySynthetic("STENCIL-REPL",
		fmt.Sprintf("%d cells x %d steps, replicated ping-pong", stencilN, stencilSteps),
		stencilReplSource, spec,
		func(prog *core.Program) *ir.Bindings {
			a := ir.NewHostArray(prog.Module.Prog.Scope["a"], int64(stencilN))
			for i := range a.F32 {
				a.F32[i] = float32(i%97) * 0.25
			}
			return ir.NewBindings().
				SetScalar("n", stencilN).SetScalar("steps", stencilSteps).
				SetArray("a", a)
		})
	if err != nil {
		return nil, err
	}
	loads = append(loads, st)
	const saxpyN, saxpySteps = 1 << 18, 8
	sx, err := appStudySynthetic("SAXPY",
		fmt.Sprintf("%d elements x %d steps, streaming", saxpyN, saxpySteps),
		appStudySaxpySrc, spec,
		func(prog *core.Program) *ir.Bindings {
			x := ir.NewHostArray(prog.Module.Prog.Scope["x"], int64(saxpyN))
			for i := range x.F64 {
				x.F64[i] = float64(i%31) * 0.125
			}
			return ir.NewBindings().
				SetScalar("n", saxpyN).SetScalar("steps", saxpySteps).SetScalar("a", 1.5).
				SetArray("x", x)
		})
	if err != nil {
		return nil, err
	}
	loads = append(loads, sx)
	const fusedN, fusedSteps = 1 << 18, 8
	fp, err := appStudySynthetic("FUSED-PAIR",
		fmt.Sprintf("%d elements x %d steps, adjacent independent pair", fusedN, fusedSteps),
		appStudyFusedSrc, spec,
		func(prog *core.Program) *ir.Bindings {
			b := ir.NewBindings().
				SetScalar("n", fusedN).SetScalar("steps", fusedSteps)
			for _, name := range []string{"a", "b"} {
				a := ir.NewHostArray(prog.Module.Prog.Scope[name], int64(fusedN))
				for i := range a.F32 {
					a.F32[i] = float32(i%61) * 0.0625
				}
				b.SetArray(name, a)
			}
			return b
		})
	if err != nil {
		return nil, err
	}
	loads = append(loads, fp)

	const runs = 3
	var rows []AppStudyRow
	for _, wl := range loads {
		best := func(opts rt.Options) (float64, *rt.Report, int, error) {
			bestMS := 0.0
			fused := 0
			var rep *rt.Report
			for i := 0; i < runs; i++ {
				r, phaseB, f, err := wl.run(opts)
				if err != nil {
					return 0, nil, 0, fmt.Errorf("bench: %s: %w", wl.name, err)
				}
				ms := float64(phaseB) / float64(time.Millisecond)
				if rep == nil || ms < bestMS {
					bestMS, fused = ms, f
				}
				rep = r
			}
			return bestMS, rep, fused, nil
		}
		interpMS, interpRep, _, err := best(rt.Options{DisableSpecialize: true, DisableFusion: true})
		if err != nil {
			return nil, err
		}
		specMS, specRep, fused, err := best(rt.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AppStudyRow{
			Name: wl.name, Desc: wl.desc, Runs: runs,
			InterpMS: interpMS, SpecMS: specMS,
			Speedup:       interpMS / specMS,
			FusedLaunches: fused,
			Invariant:     reflect.DeepEqual(interpRep, specRep),
		})
	}
	return rows, nil
}

// RenderAppStudy prints the app study as text.
func RenderAppStudy(w io.Writer, rows []AppStudyRow) {
	fmt.Fprintln(w, "Phase-B wall-clock: interpreter vs specialized executors + launch fusion")
	fmt.Fprintln(w, "(real elapsed time in the kernel fan-out phase; simulated-time reports bit-identical)")
	fmt.Fprintf(w, "  %-14s %10s %10s %8s %7s  %s\n", "workload", "interp ms", "spec ms", "speedup", "fused", "invariant")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-14s %10.1f %10.1f %7.2fx %7d  %v\n",
			r.Name, r.InterpMS, r.SpecMS, r.Speedup, r.FusedLaunches, r.Invariant)
	}
}
