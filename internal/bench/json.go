package bench

import (
	"encoding/json"
	"io"
	"time"

	"accmulti/internal/rt"
)

// JSON export of the evaluation, for plotting and regression tooling.
// Durations serialize in microseconds of simulated time.

type jsonReport struct {
	TotalUS, KernelUS, CPUGPUUS, GPUGPUUS float64
	BytesH2D, BytesD2H, BytesP2P          int64
	KernelLaunches                        int
	PeakUserBytes, PeakSystemBytes        int64
}

func toJSONReport(r *rt.Report) jsonReport {
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	return jsonReport{
		TotalUS:  us(r.Total()),
		KernelUS: us(r.KernelTime), CPUGPUUS: us(r.CPUGPUTime), GPUGPUUS: us(r.GPUGPUTime),
		BytesH2D: r.BytesH2D, BytesD2H: r.BytesD2H, BytesP2P: r.BytesP2P,
		KernelLaunches: r.KernelLaunches,
		PeakUserBytes:  r.PeakUserBytes, PeakSystemBytes: r.PeakSystemBytes,
	}
}

type jsonPoint struct {
	App, Machine, Version string
	GPUs                  int
	Relative              float64
	Breakdown             [3]float64
	MemUser, MemSystem    float64
	Report                jsonReport
}

// JSONDocument is the serialized evaluation bundle.
type JSONDocument struct {
	Config    Config
	Figures   []jsonPoint        `json:",omitempty"`
	Table2    []Table2Row        `json:",omitempty"`
	Ablations []AblationRow      `json:",omitempty"`
	Cluster   []ClusterRow       `json:",omitempty"`
	WallClock []WallClockRow     `json:",omitempty"`
	Async     []AsyncRow         `json:",omitempty"`
	AppStudy  []AppStudyRow      `json:",omitempty"`
	Node      []NodeRow          `json:",omitempty"`
	LoadTest  *LoadTestReport    `json:",omitempty"`
	Headline  map[string]float64 `json:",omitempty"`
}

// WriteJSON serializes an evaluation bundle. Any section may be nil.
func WriteJSON(w io.Writer, res *Results, table2 []Table2Row, abl []AblationRow, cluster []ClusterRow, wall []WallClockRow, async []AsyncRow, appstudy []AppStudyRow, node []NodeRow, loadtest *LoadTestReport) error {
	doc := JSONDocument{Table2: table2, Ablations: abl, Cluster: cluster, WallClock: wall, Async: async, AppStudy: appstudy, Node: node, LoadTest: loadtest}
	if res != nil {
		doc.Config = res.Config
		doc.Headline = res.Headline()
		for _, p := range res.Points {
			doc.Figures = append(doc.Figures, jsonPoint{
				App: p.App, Machine: p.Machine, Version: p.Version,
				GPUs: p.GPUs, Relative: p.Relative, Breakdown: p.Breakdown,
				MemUser: p.MemUser, MemSystem: p.MemSystem,
				Report: toJSONReport(p.Report),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
