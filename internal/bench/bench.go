// Package bench regenerates the paper's evaluation: Table I (machine
// settings), Table II (application characteristics), Figure 7 (relative
// performance vs OpenMP across versions and GPU counts), Figure 8 (the
// execution-time breakdown), Figure 9 (device-memory usage), and the
// ablation studies behind the design choices (two-level dirty bits,
// distribution policy, layout transform, reductiontoarray, reload
// skipping, chunk size).
package bench

import (
	"fmt"
	"time"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
	"accmulti/internal/trace"
)

// Config controls one evaluation sweep.
type Config struct {
	// Scale multiplies each application's default benchmark scale
	// (1.0 keeps harness runtime in the minutes; the paper's exact
	// input sizes correspond to AppScale values of 1.0).
	Scale float64
	// AppScale overrides the per-app scale (fraction of the paper's
	// input size). Zero entries fall back to defaults.
	AppScale map[string]float64
	// Seed drives the input generators.
	Seed int64
	// Verify re-checks every run against the Go references.
	Verify bool
	// Apps restricts the sweep (empty = all three).
	Apps []string
	// NoSpecialize disables the specialized kernel executors (the
	// Phase-B direct-slice fast path) in every measured configuration,
	// isolating the other host optimizations.
	NoSpecialize bool
	// Async runs the Proposal (multi-GPU) configurations under the
	// pipelined scheduler, so their simulated totals are overlapped
	// makespans instead of bulk-synchronous phase sums. Results and
	// transfer accounting are identical either way; the paper's
	// figures were measured synchronously (accbench -no-async).
	Async bool
	// Trace, when non-nil, collects structured spans and metrics for
	// every measured run. Each configuration becomes its own trace
	// process ("app/machine/mode(gpus)"), so one Chrome trace file
	// holds the whole sweep side by side.
	Trace *trace.Tracer
}

// Default per-app benchmark scales: fractions of the paper's input
// sizes that keep functional execution tractable while the kernels
// stay long enough to dominate fixed launch/transfer latencies.
var defaultBenchScale = map[string]float64{
	"MD":     1.0,
	"KMEANS": 0.08,
	"BFS":    0.1,
	// Extension apps (beyond the paper): -apps SPMV,HOTSPOT2D.
	"SPMV":      0.25,
	"HOTSPOT2D": 0.25,
	"NBODY":     0.25,
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Seed == 0 {
		c.Seed = 20130701 // ICPP 2013
	}
	if len(c.Apps) == 0 {
		c.Apps = []string{"MD", "KMEANS", "BFS"}
	}
	return c
}

func (c Config) scaleFor(app string) float64 {
	if s, ok := c.AppScale[app]; ok && s > 0 {
		return s * c.Scale
	}
	return defaultBenchScale[app] * c.Scale
}

// Point is one measured configuration: an application under one
// version (mode + GPU count) on one machine.
type Point struct {
	App     string
	Machine string
	// Version labels the bar as the paper does: "OpenMP",
	// "OpenACC(1)", "CUDA(1)", "Proposal(N)".
	Version string
	GPUs    int
	Mode    rt.Mode
	Report  *rt.Report
	// Relative is the speedup over the machine's OpenMP run.
	Relative float64
	// Breakdown is (GPU-GPU, CPU-GPU, KERNELS) normalized to the
	// 1-GPU Proposal total on the same machine (Fig 8).
	Breakdown [3]float64
	// MemUser and MemSystem are peak device bytes normalized to the
	// 1-GPU Proposal user bytes (Fig 9).
	MemUser, MemSystem float64
}

// Results is a complete evaluation sweep.
type Results struct {
	Config   Config
	Machines []sim.MachineSpec
	Points   []Point
}

// machines returns the two evaluation platforms of Table I.
func machines() []sim.MachineSpec {
	return []sim.MachineSpec{sim.Desktop(), sim.SupercomputerNode()}
}

// RunAll executes the full version matrix the paper's Figure 7 shows.
func RunAll(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	res := &Results{Config: cfg, Machines: machines()}
	for _, appName := range cfg.Apps {
		app, err := apps.ByName(appName)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(app.Source)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", app.Name, err)
		}
		scale := cfg.scaleFor(app.Name)
		for _, mach := range res.Machines {
			pts, err := runMachine(cfg, app, prog, mach, scale)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pts...)
		}
	}
	return res, nil
}

func runMachine(cfg Config, app *apps.App, prog *core.Program, mach sim.MachineSpec, scale float64) ([]Point, error) {
	type version struct {
		label string
		mode  rt.Mode
		gpus  int
	}
	versions := []version{
		{"OpenMP", rt.ModeCPU, 0},
		{"OpenACC(1)", rt.ModeBaseline, 1},
		{"CUDA(1)", rt.ModeCUDA, 1},
	}
	for g := 1; g <= mach.NumGPUs; g++ {
		versions = append(versions, version{fmt.Sprintf("Proposal(%d)", g), rt.ModeMultiGPU, g})
	}

	var points []Point
	var ompTotal time.Duration
	var base1 *rt.Report // 1-GPU Proposal, the Fig 8/9 normalizer
	for _, v := range versions {
		spec := mach
		if v.gpus > 0 {
			spec = mach.WithGPUs(v.gpus)
		}
		rep, err := runOnce(cfg, app, prog, spec, rt.Options{Mode: v.mode}, scale)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%s/%s: %w", app.Name, mach.Name, v.label, err)
		}
		p := Point{
			App: app.Name, Machine: mach.Name, Version: v.label,
			GPUs: v.gpus, Mode: v.mode, Report: rep,
		}
		if v.mode == rt.ModeCPU {
			ompTotal = rep.Total()
		}
		if v.mode == rt.ModeMultiGPU && v.gpus == 1 {
			base1 = rep
		}
		points = append(points, p)
	}
	for i := range points {
		p := &points[i]
		if ompTotal > 0 && p.Report.Total() > 0 {
			p.Relative = float64(ompTotal) / float64(p.Report.Total())
		}
		if base1 != nil && base1.Total() > 0 {
			norm := float64(base1.Total())
			p.Breakdown = [3]float64{
				float64(p.Report.GPUGPUTime) / norm,
				float64(p.Report.CPUGPUTime) / norm,
				float64(p.Report.KernelTime) / norm,
			}
		}
		if base1 != nil && base1.PeakUserBytes > 0 {
			p.MemUser = float64(p.Report.PeakUserBytes) / float64(base1.PeakUserBytes)
			p.MemSystem = float64(p.Report.PeakSystemBytes) / float64(base1.PeakUserBytes)
		}
	}
	return points, nil
}

// runOnce executes one configuration, optionally verifying results.
func runOnce(cfg Config, app *apps.App, prog *core.Program, spec sim.MachineSpec, opts rt.Options, scale float64) (*rt.Report, error) {
	if cfg.NoSpecialize {
		opts.DisableSpecialize = true
	}
	if cfg.Async && opts.Mode == rt.ModeMultiGPU {
		opts.Async = true
	}
	in, err := app.Generate(scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Trace != nil {
		cfg.Trace.BeginProcess(fmt.Sprintf("%s/%s/%s(%d)", app.Name, spec.Name, opts.Mode, spec.NumGPUs))
	}
	res, err := prog.Run(in.Bindings, core.Config{Machine: spec, Options: opts, Trace: cfg.Trace})
	if err != nil {
		return nil, err
	}
	if cfg.Verify {
		if err := in.Verify(res.Instance); err != nil {
			return nil, fmt.Errorf("verification failed: %w", err)
		}
	}
	return res.Report, nil
}

// Proposal returns the Proposal(n) point for app on machine.
func (r *Results) Proposal(app, machine string, n int) *Point {
	return r.find(app, machine, fmt.Sprintf("Proposal(%d)", n))
}

func (r *Results) find(app, machine, version string) *Point {
	for i := range r.Points {
		p := &r.Points[i]
		if p.App == app && p.Machine == machine && p.Version == version {
			return p
		}
	}
	return nil
}
