package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"time"

	"accmulti/internal/core"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// The async study (BENCH_PR6.json): the five shipped example programs
// run once under the bulk-synchronous schedule and once under the
// pipelined scheduler, on the desktop machine. Both runs execute the
// identical step sequence — the study records how much reported
// simulated time the overlap recovers per app, and asserts the
// equivalence contract (reports identical modulo time) along the way.

// AsyncRow is one example app's sync-vs-async comparison.
type AsyncRow struct {
	// App is the example name (quickstart, md, kmeans, bfs, stencil1d).
	App string
	// Machine and GPUs identify the platform.
	Machine string
	GPUs    int
	// SyncUS and AsyncUS are the reported simulated totals in
	// microseconds: the bulk-synchronous phase sum and the overlapped
	// makespan.
	SyncUS, AsyncUS float64
	// Speedup is SyncUS / AsyncUS.
	Speedup float64
	// Equivalent records that the two reports matched modulo time
	// (buckets, volumes, launches, events, peaks) — the differential
	// contract the fuzz harness enforces, re-checked here.
	Equivalent bool
}

// examplesDir locates the shipped examples whether the caller runs
// from the repo root (cmd/accbench) or from this package (tests).
func examplesDir() (string, error) {
	for _, d := range []string{"examples", filepath.Join("..", "..", "examples")} {
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, nil
		}
	}
	return "", fmt.Errorf("bench: cannot locate the examples directory (run from the repo root)")
}

// exampleSource extracts the backquoted `const source` program from an
// example's main.go, so the study measures the shipped programs
// verbatim.
func exampleSource(dir, name string) (string, error) {
	path := filepath.Join(dir, name, "main.go")
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	const marker = "const source = `"
	s := string(data)
	i := strings.Index(s, marker)
	if i < 0 {
		return "", fmt.Errorf("bench: %s: no embedded source", path)
	}
	rest := s[i+len(marker):]
	j := strings.Index(rest, "`")
	if j < 0 {
		return "", fmt.Errorf("bench: %s: unterminated embedded source", path)
	}
	return rest[:j], nil
}

// asyncWorkload is one example with a deterministic binding generator;
// bindings are rebuilt per run because copyout mutates bound arrays.
type asyncWorkload struct {
	name string
	bind func() *ir.Bindings
}

// asyncWorkloads builds the five example workloads at study scale:
// inputs large enough that transfers and halos are visible against the
// kernels, small enough that the functional simulation stays quick.
func asyncWorkloads() []asyncWorkload {
	return []asyncWorkload{
		{name: "quickstart", bind: func() *ir.Bindings {
			const n = 1 << 18
			x := &ir.HostArray{F32: make([]float32, n)}
			y := &ir.HostArray{F32: make([]float32, n)}
			for i := 0; i < n; i++ {
				x.F32[i] = float32(i%100) * 0.01
				y.F32[i] = 1
			}
			return ir.NewBindings().SetScalar("n", n).SetScalar("a", 2.0).
				SetArray("x", x).SetArray("y", y)
		}},
		{name: "md", bind: func() *ir.Bindings {
			const natoms, maxn = 4096, 32
			pos := &ir.HostArray{F32: make([]float32, 4*natoms)}
			for i := 0; i < natoms; i++ {
				pos.F32[4*i] = float32(i % 16)
				pos.F32[4*i+1] = float32((i / 16) % 16)
				pos.F32[4*i+2] = float32(i / 256)
			}
			nbr := &ir.HostArray{I32: make([]int32, natoms*maxn)}
			for i := 0; i < natoms; i++ {
				for j := 0; j < maxn; j++ {
					jn := i - maxn/2 + j
					if jn < 0 || jn >= natoms || jn == i {
						nbr.I32[i*maxn+j] = -1
					} else {
						nbr.I32[i*maxn+j] = int32(jn)
					}
				}
			}
			return ir.NewBindings().
				SetScalar("natoms", natoms).SetScalar("maxn", maxn).
				SetScalar("lj1", 1.5).SetScalar("lj2", 2.0).SetScalar("cutsq", 4.0).
				SetArray("pos", pos).SetArray("nbr", nbr)
		}},
		{name: "kmeans", bind: func() *ir.Bindings {
			const n, nf, k, iters = 20000, 8, 4, 4
			feat := &ir.HostArray{F32: make([]float32, n*nf)}
			for i := range feat.F32 {
				feat.F32[i] = float32((i*2654435761)%1000) / 250
			}
			clusters := &ir.HostArray{F32: make([]float32, k*nf)}
			copy(clusters.F32, feat.F32[:k*nf])
			member := &ir.HostArray{I32: make([]int32, n)}
			return ir.NewBindings().
				SetScalar("n", n).SetScalar("nf", nf).SetScalar("k", k).SetScalar("iters", iters).
				SetArray("feat", feat).SetArray("clusters", clusters).SetArray("member", member)
		}},
		{name: "bfs", bind: func() *ir.Bindings {
			// A deterministic binary tree: parent(w) = w/2, depth ~log2(nv).
			const nv = 60000
			deg := make([]int32, nv)
			for w := 1; w < nv; w++ {
				deg[w/2]++
			}
			off := &ir.HostArray{I32: make([]int32, nv+1)}
			for v := 0; v < nv; v++ {
				off.I32[v+1] = off.I32[v] + deg[v]
			}
			edges := &ir.HostArray{I32: make([]int32, off.I32[nv])}
			fill := make([]int32, nv)
			copy(fill, off.I32[:nv])
			for w := 1; w < nv; w++ {
				edges.I32[fill[w/2]] = int32(w)
				fill[w/2]++
			}
			cost := &ir.HostArray{I32: make([]int32, nv)}
			for i := range cost.I32 {
				cost.I32[i] = -1
			}
			cost.I32[0] = 0
			return ir.NewBindings().
				SetScalar("nv", nv).SetScalar("ne", float64(len(edges.I32))).
				SetArray("off", off).SetArray("edges", edges).SetArray("cost", cost)
		}},
		{name: "stencil1d", bind: func() *ir.Bindings {
			const n, steps = 1 << 18, 8
			a := &ir.HostArray{F32: make([]float32, n)}
			a.F32[n/2] = 1000
			return ir.NewBindings().
				SetScalar("n", n).SetScalar("steps", steps).SetArray("a", a)
		}},
	}
}

// asyncNormalize strips the time-carrying fields the schedules are
// allowed to disagree on; everything else must match exactly.
func asyncNormalize(rep *rt.Report) *rt.Report {
	c := *rep
	c.Async = false
	c.AsyncTime = 0
	c.Events = append([]rt.Event(nil), rep.Events...)
	for i := range c.Events {
		c.Events[i].Time = 0
	}
	return &c
}

// AsyncStudy measures every example under both schedules.
func AsyncStudy(cfg Config) ([]AsyncRow, error) {
	dir, err := examplesDir()
	if err != nil {
		return nil, err
	}
	spec := sim.Desktop()
	var rows []AsyncRow
	for _, wl := range asyncWorkloads() {
		src, err := exampleSource(dir, wl.name)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(src)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", wl.name, err)
		}
		run := func(opts rt.Options) (*rt.Report, error) {
			res, err := prog.Run(wl.bind(), core.Config{Machine: spec, Options: opts})
			if err != nil {
				return nil, fmt.Errorf("bench: %s: %w", wl.name, err)
			}
			return res.Report, nil
		}
		syncRep, err := run(rt.Options{})
		if err != nil {
			return nil, err
		}
		asyncRep, err := run(rt.Options{Async: true})
		if err != nil {
			return nil, err
		}
		us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
		row := AsyncRow{
			App: wl.name, Machine: spec.Name, GPUs: spec.NumGPUs,
			SyncUS: us(syncRep.Total()), AsyncUS: us(asyncRep.Total()),
			Equivalent: reflect.DeepEqual(asyncNormalize(syncRep), asyncNormalize(asyncRep)),
		}
		if row.AsyncUS > 0 {
			row.Speedup = row.SyncUS / row.AsyncUS
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAsync prints the study as text.
func RenderAsync(w io.Writer, rows []AsyncRow) {
	fmt.Fprintln(w, "Pipelined scheduling — reported simulated time, sync vs async (example apps)")
	fmt.Fprintf(w, "  %-12s %-20s %12s %12s %8s  %s\n",
		"app", "machine", "sync us", "async us", "speedup", "equivalent")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-12s %-20s %12.1f %12.1f %7.2fx  %v\n",
			r.App, fmt.Sprintf("%s(%d)", r.Machine, r.GPUs), r.SyncUS, r.AsyncUS, r.Speedup, r.Equivalent)
	}
}
