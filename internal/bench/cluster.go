package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// ClusterRow is one application on one cluster shape — the paper's §VI
// inter-node future work, explored on the simulated fabric.
type ClusterRow struct {
	App     string
	Shape   string // e.g. "1x3", "2x2"
	GPUs    int
	Total   time.Duration
	Speedup float64 // vs the single supercomputer node with 1 GPU
	NetP2P  bool    // whether GPU-GPU traffic crossed nodes
}

// ClusterStudy runs each app on a single supercomputer node (1 and 3
// GPUs) and on 2x2 and 2x3 clusters. The expectation mirrors the
// paper's intuition for the future work: communication-free apps (MD)
// keep scaling across nodes, while communication-bound apps (BFS) fall
// off a cliff when replica synchronization crosses the network.
func ClusterStudy(cfg Config) ([]ClusterRow, error) {
	cfg = cfg.withDefaults()
	shapes := []struct {
		label string
		spec  sim.MachineSpec
	}{
		{"1x1", sim.SupercomputerNode().WithGPUs(1)},
		{"1x3", sim.SupercomputerNode()},
		{"2x2", sim.Cluster(2, 2)},
		{"2x3", sim.Cluster(2, 3)},
	}
	var rows []ClusterRow
	for _, name := range cfg.Apps {
		app, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		prog, err := core.Compile(app.Source)
		if err != nil {
			return nil, err
		}
		var base time.Duration
		for _, sh := range shapes {
			rep, err := runOnce(cfg, app, prog, sh.spec, rt.Options{}, cfg.scaleFor(name))
			if err != nil {
				return nil, fmt.Errorf("cluster %s/%s: %w", name, sh.label, err)
			}
			if sh.label == "1x1" {
				base = rep.Total()
			}
			row := ClusterRow{
				App: name, Shape: sh.label, GPUs: sh.spec.NumGPUs,
				Total:  rep.Total(),
				NetP2P: sh.spec.NodeCount() > 1 && rep.BytesP2P > 0,
			}
			if base > 0 {
				row.Speedup = float64(base) / float64(rep.Total())
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderCluster prints the cluster study.
func RenderCluster(w io.Writer, rows []ClusterRow) {
	fmt.Fprintln(w, "Cluster study — inter-node multi-GPU (paper §VI future work)")
	fmt.Fprintln(w, "speedup normalized to one M2050 on a single node")
	fmt.Fprintln(w, strings.Repeat("-", 64))
	fmt.Fprintf(w, "%-10s %-6s %5s %14s %9s %s\n", "App", "Shape", "GPUs", "Total", "Speedup", "")
	last := ""
	for _, r := range rows {
		app := r.App
		if app == last {
			app = ""
		} else if last != "" {
			fmt.Fprintln(w)
		}
		last = r.App
		note := ""
		if r.NetP2P {
			note = "(GPU-GPU over network)"
		}
		fmt.Fprintf(w, "%-10s %-6s %5d %14s %8.2fx %s\n",
			app, r.Shape, r.GPUs, r.Total.Round(time.Microsecond), r.Speedup, note)
	}
}
