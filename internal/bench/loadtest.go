package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accmulti/internal/apps"
	"accmulti/internal/serve"
)

// Load test for the accd service: drive an in-process server with a
// mixed concurrent workload (the paper apps at tiny generated scales,
// iterated stencils on both machines, a multi-kernel pipeline family,
// compile-only requests, and sources the vet gate or the parser
// rejects) and measure throughput plus latency percentiles twice —
// once with every request compiling cold, once against a warm program
// cache. The warm/cold throughput ratio is the headline: it is the
// structural win of the content-hash cache, not a micro-optimization.

// LoadTestConfig sizes the load test.
type LoadTestConfig struct {
	// Workers is the number of concurrent clients (default 64).
	Workers int
	// Requests is the request count per phase (default 512).
	Requests int
	// Concurrency overrides the server's run slots (0 = default).
	Concurrency int
	// Seed drives the generator-based requests.
	Seed int64
}

func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Workers <= 0 {
		c.Workers = 64
	}
	if c.Requests <= 0 {
		c.Requests = 512
	}
	return c
}

// LoadPhase is one measured phase of the load test.
type LoadPhase struct {
	// Phase is "cold" (every request compiles) or "warm" (cache hits).
	Phase string
	// Requests, OK, Rejected, Errors partition the responses: OK is
	// 2xx, Rejected the expected structured 422s of the broken corpus
	// entries, Errors everything unexpected.
	Requests, OK, Rejected, Errors int
	// WallMS is the phase's elapsed host time in milliseconds.
	WallMS float64
	// Throughput is requests per second of wall time.
	Throughput float64
	// P50US / P99US are request-latency percentiles in microseconds.
	P50US, P99US int64
	// CacheHits / CacheMisses count the X-Accd-Cache verdicts.
	CacheHits, CacheMisses int
}

// LoadTestReport is the load test's result bundle.
type LoadTestReport struct {
	Workers, Requests int
	Cold, Warm        LoadPhase
	// WarmColdRatio is the headline: warm-cache throughput over
	// cold-cache throughput.
	WarmColdRatio float64
}

// loadReq is one corpus entry. path is the endpoint ("/v1/run" or
// "/v1/compile"); exactly one of req/creq is set and carries the
// source, so the cold phase can rebuild the body with a per-request
// salt comment, defeating the cache without changing semantics.
type loadReq struct {
	name   string
	path   string
	body   []byte
	wantOK bool
	req    *serve.RunRequest
	creq   *serve.CompileRequest
}

const loadStencilSrc = `
int n, steps;
float a[n], b[n];

void main() {
    int t, i;
    #pragma acc data copy(a) create(b)
    {
        for (t = 0; t < steps; t++) {
            #pragma acc localaccess(a) stride(1, 1, 1)
            #pragma acc localaccess(b) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                if (i > 0 && i < n - 1) {
                    b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
                } else {
                    b[i] = a[i];
                }
            }
            #pragma acc localaccess(b) stride(1)
            #pragma acc localaccess(a) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                a[i] = b[i];
            }
        }
    }
}
`

// pipelineSrc builds a k-kernel pipeline over tiny arrays: each kernel
// reads its predecessor's output, so compile, translation and the
// dataflow-vet pass all scale with k while the run stays trivial. This
// is the compile-bound end of the service mix — the requests the
// program cache helps most.
func pipelineSrc(k int) string {
	var b bytes.Buffer
	b.WriteString("int n;\nfloat a0[n]")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&b, ", a%d[n]", i)
	}
	b.WriteString(";\n\nvoid main() {\n    int i;\n")
	b.WriteString("    #pragma acc data copyin(a0) copyout(a" + fmt.Sprint(k) + ")")
	if k > 1 {
		b.WriteString(" create(a1")
		for i := 2; i < k; i++ {
			fmt.Fprintf(&b, ", a%d", i)
		}
		b.WriteString(")")
	}
	b.WriteString("\n    {\n")
	for i := 1; i <= k; i++ {
		fmt.Fprintf(&b, "        #pragma acc localaccess(a%d) stride(1)\n", i-1)
		fmt.Fprintf(&b, "        #pragma acc localaccess(a%d) stride(1)\n", i)
		b.WriteString("        #pragma acc parallel loop\n")
		fmt.Fprintf(&b, "        for (i = 0; i < n; i++) {\n")
		fmt.Fprintf(&b, "            a%d[i] = a%d[i] * %d.5 + %d.0;\n", i, i-1, i, i)
		b.WriteString("        }\n")
	}
	b.WriteString("    }\n}\n")
	return b.String()
}

const loadVetBadSrc = `
int n;
float a[n];
float b[n];

void main() {
    int i;
    #pragma acc data copy(a, b)
    {
        #pragma acc parallel loop
        #pragma acc localaccess(b) stride(1)
        for (i = 0; i < n; i++) {
            a[i] = b[i + 1];
        }
    }
}
`

// loadCorpus builds the mixed request mix: the three paper apps at
// tiny generated scales, the iterated stencil at two sizes, a run of
// the pipeline family, compile-only requests (the pipeline family at
// larger kernel counts plus two app sources), a source accvet
// rejects, and a source that does not compile. Requests that vet pay
// the full cold pipeline (parse, translate, directive verification)
// while a warm request pays none of it.
func loadCorpus(seed int64) ([]loadReq, error) {
	var corpus []loadReq
	add := func(name string, r *serve.RunRequest, wantOK bool) error {
		body, err := json.Marshal(r)
		if err != nil {
			return err
		}
		corpus = append(corpus, loadReq{name: name, path: "/v1/run", body: body, wantOK: wantOK, req: r})
		return nil
	}
	addCompile := func(name string, r *serve.CompileRequest) error {
		body, err := json.Marshal(r)
		if err != nil {
			return err
		}
		corpus = append(corpus, loadReq{name: name, path: "/v1/compile", body: body, wantOK: true, creq: r})
		return nil
	}
	// BFS runs without the vet gate: its data-dependent gather is
	// exactly what the static verifier (correctly) refuses to prove.
	// The service mix is short requests: tiny generated instances (and
	// KMEANS trimmed to one Lloyd iteration via its iters scalar), so
	// the per-request cost is dominated by what the cache can save.
	for _, a := range []struct {
		name    string
		scale   float64
		vet     bool
		scalars map[string]float64
	}{
		{"MD", 0.0001, true, nil},
		{"KMEANS", 0.00002, true, map[string]float64{"iters": 1}},
		{"BFS", 0.00001, false, nil},
	} {
		app, err := apps.ByName(a.name)
		if err != nil {
			return nil, err
		}
		if err := add(a.name, &serve.RunRequest{
			Source:    app.Source,
			Vet:       a.vet,
			Generator: &serve.GeneratorSpec{App: a.name, Scale: a.scale, Seed: seed},
			Scalars:   a.scalars,
			Options:   serve.RunOptions{NoSpecialize: true},
		}, true); err != nil {
			return nil, err
		}
	}
	if err := add("stencil1d", &serve.RunRequest{
		Source: loadStencilSrc, Vet: true,
		Scalars: map[string]float64{"n": 128, "steps": 2},
	}, true); err != nil {
		return nil, err
	}
	if err := add("stencil1d-wide", &serve.RunRequest{
		Source: loadStencilSrc, Vet: true, Machine: "super",
		Scalars: map[string]float64{"n": 256, "steps": 1},
	}, true); err != nil {
		return nil, err
	}
	for _, k := range []int{8} {
		if err := add(fmt.Sprintf("pipeline%d", k), &serve.RunRequest{
			Source: pipelineSrc(k), Vet: true,
			Options: serve.RunOptions{NoSpecialize: true},
			Scalars: map[string]float64{"n": 32},
		}, true); err != nil {
			return nil, err
		}
	}
	// Compile-only traffic: CI-style clients that want the content-hash
	// key and the accvet diagnostics without executing anything. These
	// are the purest cache win — a warm request is a single map lookup.
	for _, k := range []int{24, 32, 48, 64, 96, 128} {
		if err := addCompile(fmt.Sprintf("compile-pipeline%d", k),
			&serve.CompileRequest{Source: pipelineSrc(k), Vet: true}); err != nil {
			return nil, err
		}
	}
	for _, name := range []string{"MD", "KMEANS"} {
		app, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		if err := addCompile("compile-"+name, &serve.CompileRequest{Source: app.Source, Vet: true}); err != nil {
			return nil, err
		}
	}
	if err := add("vet-rejected", &serve.RunRequest{
		Source: loadVetBadSrc, Vet: true,
		Scalars: map[string]float64{"n": 64},
	}, false); err != nil {
		return nil, err
	}
	if err := add("no-compile", &serve.RunRequest{
		Source: "int n void main() { }",
	}, false); err != nil {
		return nil, err
	}
	return corpus, nil
}

// saltBody rebuilds a corpus request with a distinct block comment so
// its cache key is unique while its semantics are untouched.
func saltBody(c loadReq, i int) ([]byte, error) {
	salt := fmt.Sprintf("/* salt%d */\n", i)
	if c.creq != nil {
		salted := *c.creq
		salted.Source = salt + c.creq.Source
		return json.Marshal(salted)
	}
	salted := *c.req
	salted.Source = salt + c.req.Source
	return json.Marshal(salted)
}

// runPhase fires total requests at the handler from cfg.Workers
// concurrent clients. bodyFor picks the request body by index.
func runPhase(name string, cfg LoadTestConfig, h http.Handler,
	corpus []loadReq, bodyFor func(i int) ([]byte, error)) (LoadPhase, error) {

	total := cfg.Requests
	latencies := make([]int64, total)
	codes := make([]int, total)
	hits := make([]bool, total)
	var next atomic.Int64
	var firstErr atomic.Value

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				body, err := bodyFor(i)
				if err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				req := httptest.NewRequest("POST", corpus[i%len(corpus)].path, bytes.NewReader(body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				latencies[i] = time.Since(t0).Microseconds()
				codes[i] = rec.Code
				hits[i] = rec.Header().Get("X-Accd-Cache") == "hit"
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if err, ok := firstErr.Load().(error); ok && err != nil {
		return LoadPhase{}, err
	}

	p := LoadPhase{Phase: name, Requests: total}
	for i := 0; i < total; i++ {
		want := corpus[i%len(corpus)].wantOK
		switch {
		case codes[i] == http.StatusOK && want:
			p.OK++
		case codes[i] == http.StatusUnprocessableEntity && !want:
			p.Rejected++
		default:
			p.Errors++
		}
		if hits[i] {
			p.CacheHits++
		} else {
			p.CacheMisses++
		}
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	p.P50US = latencies[total/2]
	p.P99US = latencies[total*99/100]
	p.WallMS = float64(wall) / float64(time.Millisecond)
	p.Throughput = float64(total) / wall.Seconds()
	return p, nil
}

// LoadTest measures the accd service cold (every request compiles its
// own salted source) and warm (the cache already holds every distinct
// program), returning both phases and the warm/cold throughput ratio.
func LoadTest(cfg LoadTestConfig) (*LoadTestReport, error) {
	cfg = cfg.withDefaults()
	corpus, err := loadCorpus(cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Cold: a fresh server with room to never evict, every body salted
	// to a unique cache key — each request pays the full compile+vet.
	coldSrv := serve.New(serve.Config{
		CacheEntries: cfg.Requests + len(corpus) + 1,
		Concurrency:  cfg.Concurrency,
	})
	cold, err := runPhase("cold", cfg, coldSrv.Handler(), corpus, func(i int) ([]byte, error) {
		return saltBody(corpus[i%len(corpus)], i)
	})
	if err != nil {
		return nil, err
	}

	// Warm: a fresh server warmed with one serial pass over the
	// distinct programs, then the same request volume — all hits.
	warmSrv := serve.New(serve.Config{Concurrency: cfg.Concurrency})
	for _, c := range corpus {
		req := httptest.NewRequest("POST", c.path, bytes.NewReader(c.body))
		warmSrv.Handler().ServeHTTP(httptest.NewRecorder(), req)
	}
	warm, err := runPhase("warm", cfg, warmSrv.Handler(), corpus, func(i int) ([]byte, error) {
		return corpus[i%len(corpus)].body, nil
	})
	if err != nil {
		return nil, err
	}

	rep := &LoadTestReport{
		Workers:  cfg.Workers,
		Requests: cfg.Requests,
		Cold:     cold,
		Warm:     warm,
	}
	if cold.Throughput > 0 {
		rep.WarmColdRatio = warm.Throughput / cold.Throughput
	}
	return rep, nil
}

// RenderLoadTest prints the load-test report as text.
func RenderLoadTest(w io.Writer, r *LoadTestReport) {
	fmt.Fprintf(w, "accd load test: %d requests per phase, %d concurrent clients\n",
		r.Requests, r.Workers)
	fmt.Fprintf(w, "%-6s %9s %9s %7s %10s %12s %10s %10s %6s %6s\n",
		"phase", "req/s", "wall ms", "ok", "rejected", "errors", "p50 us", "p99 us", "hit", "miss")
	for _, p := range []LoadPhase{r.Cold, r.Warm} {
		fmt.Fprintf(w, "%-6s %9.0f %9.1f %7d %10d %12d %10d %10d %6d %6d\n",
			p.Phase, p.Throughput, p.WallMS, p.OK, p.Rejected, p.Errors,
			p.P50US, p.P99US, p.CacheHits, p.CacheMisses)
	}
	fmt.Fprintf(w, "Headline: warm-cache throughput %.1fx cold-cache\n", r.WarmColdRatio)
}
