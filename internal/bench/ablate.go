package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// AblationRow is one configuration of an ablation study.
type AblationRow struct {
	Study, Variant string
	Total          time.Duration
	BytesH2D       int64
	BytesP2P       int64
}

// Ablations runs the design-choice studies DESIGN.md calls out, all on
// the desktop machine with both GPUs:
//
//   - two-level vs single-level dirty bits (BFS, paper §IV-D1)
//   - chunk-size sweep (BFS; the paper chose 1 MB experimentally)
//   - distribution vs replica-only placement (MD)
//   - layout transform on/off (KMEANS)
//   - reductiontoarray vs serialized baseline reduction (KMEANS, 1 GPU)
//   - reload skip on/off (KMEANS)
func Ablations(cfg Config) ([]AblationRow, error) {
	cfg = cfg.withDefaults()
	var rows []AblationRow

	add := func(study, variant, appName string, spec sim.MachineSpec, opts rt.Options) error {
		app, err := apps.ByName(appName)
		if err != nil {
			return err
		}
		prog, err := core.Compile(app.Source)
		if err != nil {
			return err
		}
		rep, err := runOnce(cfg, app, prog, spec, opts, cfg.scaleFor(appName))
		if err != nil {
			return fmt.Errorf("ablation %s/%s: %w", study, variant, err)
		}
		rows = append(rows, AblationRow{
			Study: study, Variant: variant,
			Total: rep.Total(), BytesH2D: rep.BytesH2D, BytesP2P: rep.BytesP2P,
		})
		return nil
	}
	desktop := sim.Desktop()

	if err := add("dirty-bits", "two-level (1MB chunks)", "BFS", desktop, rt.Options{}); err != nil {
		return nil, err
	}
	if err := add("dirty-bits", "single-level", "BFS", desktop, rt.Options{DisableTwoLevelDirty: true}); err != nil {
		return nil, err
	}

	for _, chunk := range []int64{64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		v := fmt.Sprintf("chunk %s", byteSize(chunk))
		if err := add("chunk-size", v, "BFS", desktop, rt.Options{ChunkBytes: chunk}); err != nil {
			return nil, err
		}
	}

	if err := add("placement", "distribution (localaccess)", "MD", desktop, rt.Options{}); err != nil {
		return nil, err
	}
	if err := add("placement", "replica-only", "MD", desktop, rt.Options{DisableDistribution: true}); err != nil {
		return nil, err
	}

	if err := add("layout-transform", "transformed", "KMEANS", desktop, rt.Options{}); err != nil {
		return nil, err
	}
	if err := add("layout-transform", "row-major", "KMEANS", desktop, rt.Options{DisableLayoutTransform: true}); err != nil {
		return nil, err
	}

	one := desktop.WithGPUs(1)
	if err := add("array-reduction", "reductiontoarray", "KMEANS", one, rt.Options{Mode: rt.ModeCUDA}); err != nil {
		return nil, err
	}
	if err := add("array-reduction", "serialized (stock)", "KMEANS", one, rt.Options{Mode: rt.ModeBaseline}); err != nil {
		return nil, err
	}

	if err := add("reload-skip", "skip unchanged", "KMEANS", desktop, rt.Options{}); err != nil {
		return nil, err
	}
	if err := add("reload-skip", "always reload", "KMEANS", desktop, rt.Options{DisableReloadSkip: true}); err != nil {
		return nil, err
	}

	return rows, nil
}

// RenderAblations prints the ablation table.
func RenderAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Ablations — design choices (desktop machine)")
	fmt.Fprintln(w, strings.Repeat("-", 76))
	fmt.Fprintf(w, "%-18s %-26s %12s %10s %10s\n", "Study", "Variant", "Total", "H2D", "P2P")
	last := ""
	for _, r := range rows {
		study := r.Study
		if study == last {
			study = ""
		} else if last != "" {
			fmt.Fprintln(w)
		}
		last = r.Study
		fmt.Fprintf(w, "%-18s %-26s %12s %10s %10s\n",
			study, r.Variant, r.Total.Round(time.Microsecond),
			byteSize(r.BytesH2D), byteSize(r.BytesP2P))
	}
}

func byteSize(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/float64(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/float64(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/float64(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
