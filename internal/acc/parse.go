package acc

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseDirective parses the text of one `#pragma acc ...` line (the text
// after "#pragma") into a structured Directive. line is the 1-based
// source line for diagnostics. Clause columns are relative to the
// directive text; use ParseDirectiveAt when the source column of the
// text is known.
func ParseDirective(text string, line int) (*Directive, error) {
	return ParseDirectiveAt(text, line, 1)
}

// ParseDirectiveAt is ParseDirective with the 1-based source column of
// the first character of text, so clause positions can be reported in
// real source coordinates.
func ParseDirectiveAt(text string, line, col int) (*Directive, error) {
	fields, err := splitClauses(text, col)
	if err != nil {
		return nil, fmt.Errorf("acc: line %d: %w", line, err)
	}
	if len(fields) == 0 || fields[0].Name != "acc" || len(fields[0].Args) != 0 {
		return nil, fmt.Errorf("acc: line %d: pragma is not an acc directive: %q", line, text)
	}
	fields = fields[1:]
	if len(fields) == 0 {
		return nil, fmt.Errorf("acc: line %d: empty acc directive", line)
	}
	d := &Directive{Line: line, Col: col, Raw: strings.TrimSpace(text)}

	head := fields[0]
	switch head.Name {
	case "data":
		d.Kind = KindData
		d.Clauses = fields[1:]
	case "parallel", "kernels":
		// Accept `parallel loop ...` and `kernels loop ...`; a bare
		// `parallel`/`kernels` region must still contain a loop
		// directive in this implementation, so require the loop word.
		if len(fields) < 2 || fields[1].Name != "loop" || len(fields[1].Args) != 0 {
			return nil, fmt.Errorf("acc: line %d: %s must be followed by loop (bare %s regions are not supported)", line, head.Name, head.Name)
		}
		d.Kind = KindParallelLoop
		d.Clauses = fields[2:]
	case "loop":
		// A nested `#pragma acc loop` on an inner for: treated as a
		// parallel-loop directive with no clauses of its own; the
		// translator decides whether to honor nested parallelism.
		d.Kind = KindParallelLoop
		d.Clauses = fields[1:]
	case "update":
		d.Kind = KindUpdate
		d.Clauses = fields[1:]
	case "localaccess":
		d.Kind = KindLocalAccess
		d.Clauses = fields
	case "reductiontoarray":
		d.Kind = KindReductionToArray
		d.Clauses = fields
	default:
		return nil, fmt.Errorf("acc: line %d: unknown directive %q", line, head.Name)
	}
	if err := checkClauseNames(d); err != nil {
		return nil, err
	}
	return d, nil
}

var allowedClauses = map[Kind]map[string]bool{
	KindData: {
		"copy": true, "copyin": true, "copyout": true, "create": true,
		"present": true,
	},
	KindParallelLoop: {
		"copy": true, "copyin": true, "copyout": true, "create": true,
		"present": true, "gang": true, "worker": true, "vector": true,
		"num_gangs": true, "num_workers": true, "vector_length": true,
		"reduction": true, "private": true, "independent": true,
		"collapse": true,
	},
	KindUpdate: {
		"host": true, "device": true, "self": true,
	},
	KindLocalAccess: {
		"localaccess": true, "stride": true, "bounds": true,
	},
	KindReductionToArray: {
		"reductiontoarray": true,
	},
}

func checkClauseNames(d *Directive) error {
	allowed := allowedClauses[d.Kind]
	for _, c := range d.Clauses {
		if !allowed[c.Name] {
			return fmt.Errorf("acc: line %d: clause %q is not valid on %s", d.Line, c.Name, d.Kind)
		}
	}
	return nil
}

// splitClauses tokenizes "acc parallel loop copyin(a, b[i]) gang" into
// clause units, keeping parenthesized argument lists intact and
// splitting their contents on top-level commas. base is the source
// column of text[0]; each clause records the column of its name.
func splitClauses(text string, base int) ([]Clause, error) {
	var out []Clause
	i, n := 0, len(text)
	for i < n {
		r := rune(text[i])
		switch {
		case unicode.IsSpace(r):
			i++
		case isIdentStart(r):
			start := i
			for i < n && isIdentRune(rune(text[i])) {
				i++
			}
			name := text[start:i]
			// Skip spaces between name and '('.
			j := i
			for j < n && unicode.IsSpace(rune(text[j])) {
				j++
			}
			if j < n && text[j] == '(' {
				args, next, err := scanParenArgs(text, j)
				if err != nil {
					return nil, err
				}
				out = append(out, Clause{Name: name, Args: args, Col: base + start})
				i = next
			} else {
				out = append(out, Clause{Name: name, Col: base + start})
			}
		default:
			return nil, fmt.Errorf("unexpected character %q in pragma", r)
		}
	}
	return out, nil
}

// scanParenArgs scans a balanced "(...)" starting at text[open] == '('
// and returns the top-level comma-separated arguments and the index
// after the closing paren.
func scanParenArgs(text string, open int) (args []string, next int, err error) {
	depth := 0
	start := open + 1
	for i := open; i < len(text); i++ {
		switch text[i] {
		case '(', '[':
			depth++
		case ')', ']':
			depth--
			if depth == 0 {
				if arg := strings.TrimSpace(text[start:i]); arg != "" {
					args = append(args, arg)
				} else if len(args) > 0 {
					return nil, 0, fmt.Errorf("empty argument in %q", text[open:i+1])
				}
				return args, i + 1, nil
			}
			if depth < 0 {
				return nil, 0, fmt.Errorf("unbalanced parentheses in pragma")
			}
		case ',':
			if depth == 1 {
				arg := strings.TrimSpace(text[start:i])
				if arg == "" {
					return nil, 0, fmt.Errorf("empty argument in clause")
				}
				args = append(args, arg)
				start = i + 1
			}
		}
	}
	return nil, 0, fmt.Errorf("unterminated parentheses in pragma")
}

// splitColon splits "op: rest" at the first top-level colon.
func splitColon(s string) (op, rest string, err error) {
	idx := strings.IndexByte(s, ':')
	if idx < 0 {
		return "", "", fmt.Errorf("expected op:target form")
	}
	op = strings.TrimSpace(s[:idx])
	rest = strings.TrimSpace(s[idx+1:])
	if op == "" || rest == "" {
		return "", "", fmt.Errorf("expected op:target form")
	}
	return op, rest, nil
}

// splitIndex splits "arr[expr]" into the array name and index text.
func splitIndex(s string) (arr, idx string, err error) {
	open := strings.IndexByte(s, '[')
	if open <= 0 || !strings.HasSuffix(s, "]") {
		return "", "", fmt.Errorf("expected array[index] form, got %q", s)
	}
	arr = strings.TrimSpace(s[:open])
	idx = strings.TrimSpace(s[open+1 : len(s)-1])
	if !isIdent(arr) || idx == "" {
		return "", "", fmt.Errorf("expected array[index] form, got %q", s)
	}
	return arr, idx, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if i == 0 && !isIdentStart(r) {
			return false
		}
		if i > 0 && !isIdentRune(r) {
			return false
		}
	}
	return true
}
