// Package acc models OpenACC directives as they appear in `#pragma acc`
// lines, including the two extensions proposed by Komoda et al. (ICPP
// 2013) for multi-GPU execution:
//
//	#pragma acc localaccess(arr) stride(s[, left[, right]])
//	#pragma acc localaccess(arr) bounds(lowerExpr, upperExpr)
//	#pragma acc reductiontoarray(op: arr[indexExpr])
//
// `localaccess` declares that iteration i of the following parallel loop
// reads only arr[s*i-left .. s*(i+1)-1+right] (stride form) or
// arr[lowerExpr(i) .. upperExpr(i)] (bounds form, expressions over the
// induction variable and host-visible arrays). `reductiontoarray`
// marks the next statement as a reduction into dynamically indexed
// array elements.
//
// The package parses pragma text into structured directives; expression
// arguments are kept as raw strings and parsed later by the C frontend
// in the scope where the loop induction variable is visible.
package acc

import "fmt"

// Kind enumerates the directive types the compiler understands.
type Kind int

const (
	// KindData opens a structured data region: `#pragma acc data ...`
	// followed by a block.
	KindData Kind = iota
	// KindParallelLoop is `#pragma acc parallel loop ...` (or
	// `#pragma acc kernels loop ...`) preceding a for statement.
	KindParallelLoop
	// KindUpdate is the standalone `#pragma acc update host(...)
	// device(...)` executable directive.
	KindUpdate
	// KindLocalAccess is the paper's read-footprint extension.
	KindLocalAccess
	// KindReductionToArray is the paper's array-reduction extension.
	KindReductionToArray
)

func (k Kind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindParallelLoop:
		return "parallel loop"
	case KindUpdate:
		return "update"
	case KindLocalAccess:
		return "localaccess"
	case KindReductionToArray:
		return "reductiontoarray"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Clause is one `name(arg, arg, ...)` unit of a directive, or a bare
// word such as `gang` (empty Args).
type Clause struct {
	Name string
	Args []string
	// Col is the 1-based source column of the clause name (0 when the
	// directive was parsed without position information).
	Col int
}

// Directive is one parsed `#pragma acc` line.
type Directive struct {
	Kind    Kind
	Clauses []Clause
	// Line is the 1-based source line of the pragma.
	Line int
	// Col is the 1-based source column where the directive text starts.
	Col int
	// Raw is the original pragma text after "acc", for diagnostics.
	Raw string
}

// Clause returns the first clause with the given name, if any.
func (d *Directive) Clause(name string) (Clause, bool) {
	for _, c := range d.Clauses {
		if c.Name == name {
			return c, true
		}
	}
	return Clause{}, false
}

// DataClass is how a data clause moves an array at region boundaries.
type DataClass int

const (
	// ClassCopy moves host→device at entry and device→host at exit.
	ClassCopy DataClass = iota
	// ClassCopyIn moves host→device at entry only.
	ClassCopyIn
	// ClassCopyOut allocates at entry and moves device→host at exit.
	ClassCopyOut
	// ClassCreate allocates device storage with no transfers.
	ClassCreate
	// ClassPresent asserts the array is already device-resident from
	// an enclosing region; no allocation or transfer happens and the
	// inner region does not release it.
	ClassPresent
)

func (c DataClass) String() string {
	switch c {
	case ClassCopy:
		return "copy"
	case ClassCopyIn:
		return "copyin"
	case ClassCopyOut:
		return "copyout"
	case ClassCreate:
		return "create"
	case ClassPresent:
		return "present"
	default:
		return fmt.Sprintf("DataClass(%d)", int(c))
	}
}

// DataArg is one array named in a data clause.
type DataArg struct {
	Array string
	Class DataClass
}

// DataArgs extracts the copy/copyin/copyout/create arguments of a data
// or parallel-loop directive in source order.
func (d *Directive) DataArgs() ([]DataArg, error) {
	var out []DataArg
	for _, c := range d.Clauses {
		var class DataClass
		switch c.Name {
		case "copy":
			class = ClassCopy
		case "copyin":
			class = ClassCopyIn
		case "copyout":
			class = ClassCopyOut
		case "create":
			class = ClassCreate
		case "present":
			class = ClassPresent
		default:
			continue
		}
		for _, a := range c.Args {
			if !isIdent(a) {
				return nil, fmt.Errorf("acc: line %d: %s(%s): argument must be an array name", d.Line, c.Name, a)
			}
			out = append(out, DataArg{Array: a, Class: class})
		}
	}
	return out, nil
}

// Reduction is a scalar reduction clause `reduction(op:var)`.
type Reduction struct {
	Op  string // "+", "*", "max", "min", "|", "&", "||", "&&"
	Var string
}

// Reductions extracts scalar reduction clauses.
func (d *Directive) Reductions() ([]Reduction, error) {
	var out []Reduction
	for _, c := range d.Clauses {
		if c.Name != "reduction" {
			continue
		}
		for _, a := range c.Args {
			op, v, err := splitColon(a)
			if err != nil {
				return nil, fmt.Errorf("acc: line %d: reduction(%s): %w", d.Line, a, err)
			}
			if !validReduceOp(op) {
				return nil, fmt.Errorf("acc: line %d: reduction(%s): unsupported operator %q", d.Line, a, op)
			}
			if !isIdent(v) {
				return nil, fmt.Errorf("acc: line %d: reduction(%s): variable must be an identifier", d.Line, a)
			}
			out = append(out, Reduction{Op: op, Var: v})
		}
	}
	return out, nil
}

// LocalAccess is the structured form of a localaccess directive.
type LocalAccess struct {
	// Array is the array the footprint applies to.
	Array string
	// HasStride selects the affine stride form.
	HasStride bool
	// Stride, Left, Right are the raw expressions of the stride form;
	// Left/Right default to "0".
	Stride, Left, Right string
	// Lower, Upper are the raw bound expressions of the bounds form,
	// in terms of the loop induction variable.
	Lower, Upper string
	// Line is the pragma's source line.
	Line int
	// Col is the source column of the localaccess clause, and
	// ClauseCol the column of its stride()/bounds() clause (0 when
	// parsed without position information).
	Col, ClauseCol int
}

// clauseErrf reports an error positioned at one clause of a directive
// rather than at the directive as a whole.
func clauseErrf(d *Directive, c Clause, format string, args ...any) error {
	pos := fmt.Sprintf("line %d", d.Line)
	if c.Col > 0 {
		pos = fmt.Sprintf("line %d, col %d", d.Line, c.Col)
	}
	return fmt.Errorf("acc: %s: %s", pos, fmt.Sprintf(format, args...))
}

// ParseLocalAccess interprets a KindLocalAccess directive.
func ParseLocalAccess(d *Directive) (LocalAccess, error) {
	if d.Kind != KindLocalAccess {
		return LocalAccess{}, fmt.Errorf("acc: line %d: not a localaccess directive", d.Line)
	}
	la := LocalAccess{Line: d.Line}
	head, ok := d.Clause("localaccess")
	if !ok || len(head.Args) != 1 || !isIdent(head.Args[0]) {
		return LocalAccess{}, clauseErrf(d, head, "localaccess needs exactly one array name argument")
	}
	la.Array = head.Args[0]
	la.Col = head.Col
	stride, hasStride := d.Clause("stride")
	bounds, hasBounds := d.Clause("bounds")
	switch {
	case hasStride && hasBounds:
		return LocalAccess{}, clauseErrf(d, bounds, "localaccess(%s): stride and bounds are mutually exclusive", la.Array)
	case hasStride:
		la.HasStride = true
		la.ClauseCol = stride.Col
		if len(stride.Args) < 1 || len(stride.Args) > 3 {
			return LocalAccess{}, clauseErrf(d, stride, "stride() takes 1-3 arguments, got %d", len(stride.Args))
		}
		for i, a := range stride.Args {
			if a == "" {
				return LocalAccess{}, clauseErrf(d, stride, "stride() argument %d is empty", i+1)
			}
		}
		la.Stride = stride.Args[0]
		la.Left, la.Right = "0", "0"
		switch len(stride.Args) {
		case 2:
			// Symmetric halo shorthand: stride(s, h) == stride(s, h, h).
			la.Left, la.Right = stride.Args[1], stride.Args[1]
		case 3:
			la.Left, la.Right = stride.Args[1], stride.Args[2]
		}
	case hasBounds:
		la.ClauseCol = bounds.Col
		if len(bounds.Args) != 2 {
			return LocalAccess{}, clauseErrf(d, bounds, "bounds() takes exactly 2 arguments, got %d", len(bounds.Args))
		}
		for i, a := range bounds.Args {
			if a == "" {
				return LocalAccess{}, clauseErrf(d, bounds, "bounds() argument %d is empty", i+1)
			}
		}
		la.Lower, la.Upper = bounds.Args[0], bounds.Args[1]
	default:
		return LocalAccess{}, clauseErrf(d, head, "localaccess(%s) needs a stride() or bounds() clause", la.Array)
	}
	return la, nil
}

// ReductionToArray is the structured form of the reductiontoarray
// directive: op, destination array and raw index expression.
type ReductionToArray struct {
	Op    string
	Array string
	// Index is the raw index expression (may reference the induction
	// variable and other arrays; it is parsed by the C frontend).
	Index string
	Line  int
}

// ParseReductionToArray interprets a KindReductionToArray directive.
func ParseReductionToArray(d *Directive) (ReductionToArray, error) {
	if d.Kind != KindReductionToArray {
		return ReductionToArray{}, fmt.Errorf("acc: line %d: not a reductiontoarray directive", d.Line)
	}
	head, ok := d.Clause("reductiontoarray")
	if !ok || len(head.Args) != 1 {
		return ReductionToArray{}, fmt.Errorf("acc: line %d: reductiontoarray needs exactly one op:target argument", d.Line)
	}
	op, target, err := splitColon(head.Args[0])
	if err != nil {
		return ReductionToArray{}, fmt.Errorf("acc: line %d: reductiontoarray(%s): %w", d.Line, head.Args[0], err)
	}
	if !validReduceOp(op) {
		return ReductionToArray{}, fmt.Errorf("acc: line %d: reductiontoarray: unsupported operator %q", d.Line, op)
	}
	arr, idx, err := splitIndex(target)
	if err != nil {
		return ReductionToArray{}, fmt.Errorf("acc: line %d: reductiontoarray(%s): %w", d.Line, head.Args[0], err)
	}
	return ReductionToArray{Op: op, Array: arr, Index: idx, Line: d.Line}, nil
}

func validReduceOp(op string) bool {
	switch op {
	case "+", "*", "max", "min", "|", "&", "||", "&&":
		return true
	}
	return false
}
