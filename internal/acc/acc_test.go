package acc

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, text string) *Directive {
	t.Helper()
	d, err := ParseDirective(text, 1)
	if err != nil {
		t.Fatalf("ParseDirective(%q): %v", text, err)
	}
	return d
}

func TestParseDataDirective(t *testing.T) {
	d := mustParse(t, "acc data copyin(a, b) copy(c) copyout(d) create(tmp)")
	if d.Kind != KindData {
		t.Fatalf("kind = %v", d.Kind)
	}
	args, err := d.DataArgs()
	if err != nil {
		t.Fatal(err)
	}
	want := []DataArg{
		{"a", ClassCopyIn}, {"b", ClassCopyIn},
		{"c", ClassCopy}, {"d", ClassCopyOut}, {"tmp", ClassCreate},
	}
	if len(args) != len(want) {
		t.Fatalf("args = %v", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("arg %d = %v, want %v", i, args[i], want[i])
		}
	}
}

func TestParseParallelLoop(t *testing.T) {
	d := mustParse(t, "acc parallel loop gang vector reduction(+:sum) reduction(max:m) copyin(x)")
	if d.Kind != KindParallelLoop {
		t.Fatalf("kind = %v", d.Kind)
	}
	reds, err := d.Reductions()
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 2 || reds[0] != (Reduction{"+", "sum"}) || reds[1] != (Reduction{"max", "m"}) {
		t.Fatalf("reductions = %v", reds)
	}
	if _, ok := d.Clause("gang"); !ok {
		t.Error("gang clause missing")
	}
}

func TestParseKernelsLoop(t *testing.T) {
	d := mustParse(t, "acc kernels loop")
	if d.Kind != KindParallelLoop {
		t.Fatalf("kind = %v", d.Kind)
	}
}

func TestParseUpdate(t *testing.T) {
	d := mustParse(t, "acc update host(newc, count) device(clusters)")
	if d.Kind != KindUpdate {
		t.Fatalf("kind = %v", d.Kind)
	}
	h, _ := d.Clause("host")
	if len(h.Args) != 2 || h.Args[0] != "newc" {
		t.Fatalf("host args = %v", h.Args)
	}
}

func TestParseLocalAccessStride(t *testing.T) {
	d := mustParse(t, "acc localaccess(nbr) stride(128)")
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.Array != "nbr" || !la.HasStride || la.Stride != "128" || la.Left != "0" || la.Right != "0" {
		t.Fatalf("la = %+v", la)
	}

	d = mustParse(t, "acc localaccess(x) stride(1, 2)")
	la, err = ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.Left != "2" || la.Right != "2" {
		t.Fatalf("symmetric halo: %+v", la)
	}

	d = mustParse(t, "acc localaccess(x) stride(1, 2, 3)")
	la, err = ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.Stride != "1" || la.Left != "2" || la.Right != "3" {
		t.Fatalf("full stride form: %+v", la)
	}
}

func TestParseLocalAccessBounds(t *testing.T) {
	d := mustParse(t, "acc localaccess(edges) bounds(off[i], off[i+1]-1)")
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.HasStride {
		t.Fatal("bounds form should not report stride")
	}
	if la.Lower != "off[i]" || la.Upper != "off[i+1]-1" {
		t.Fatalf("bounds = %q, %q", la.Lower, la.Upper)
	}
}

func TestParseLocalAccessErrors(t *testing.T) {
	for _, text := range []string{
		"acc localaccess(x)",                        // no clause
		"acc localaccess(x) stride(1) bounds(0, 1)", // both
		"acc localaccess(x) stride()",               // empty
		"acc localaccess(x) stride(1, 2, 3, 4)",     // too many
		"acc localaccess(x) bounds(0)",              // too few
		"acc localaccess(x, y) stride(1)",           // two arrays
		"acc localaccess(3x) stride(1)",             // bad name
	} {
		d, err := ParseDirective(text, 1)
		if err != nil {
			continue // rejected at directive level is fine too
		}
		if _, err := ParseLocalAccess(d); err == nil {
			t.Errorf("ParseLocalAccess(%q) should fail", text)
		}
	}
}

func TestParseReductionToArray(t *testing.T) {
	d := mustParse(t, "acc reductiontoarray(+: newc[m*nf + f])")
	r, err := ParseReductionToArray(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != "+" || r.Array != "newc" || r.Index != "m*nf + f" {
		t.Fatalf("r = %+v", r)
	}
}

func TestParseReductionToArrayErrors(t *testing.T) {
	for _, text := range []string{
		"acc reductiontoarray(newc[i])",    // no op
		"acc reductiontoarray(+: newc)",    // no index
		"acc reductiontoarray(?: newc[i])", // bad op
		"acc reductiontoarray(+: [i])",     // no array
	} {
		d, err := ParseDirective(text, 1)
		if err != nil {
			continue
		}
		if _, err := ParseReductionToArray(d); err == nil {
			t.Errorf("ParseReductionToArray(%q) should fail", text)
		}
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	for _, text := range []string{
		"omp parallel for",                   // not acc
		"acc",                                // empty
		"acc frobnicate",                     // unknown
		"acc parallel",                       // bare parallel unsupported
		"acc data copyin(a",                  // unbalanced
		"acc data copyin(a,,b)",              // empty arg
		"acc data copyin(a) gang",            // clause invalid on data
		"acc update copyin(a)",               // clause invalid on update
		"acc parallel loop reduction(sum)",   // reduction missing op
		"acc parallel loop reduction(%:x)",   // bad op
		"acc parallel loop reduction(+:a.b)", // not an identifier
		"acc data copyin(a+b)",               // not an identifier
	} {
		d, err := ParseDirective(text, 7)
		if err == nil {
			// Some are only caught by the typed extractors.
			if _, e2 := d.DataArgs(); e2 != nil {
				continue
			}
			if _, e2 := d.Reductions(); e2 != nil {
				continue
			}
			t.Errorf("ParseDirective(%q) should fail", text)
		} else if !strings.Contains(err.Error(), "line 7") {
			t.Errorf("error should carry line number: %v", err)
		}
	}
}

func TestNestedParensInClauseArgs(t *testing.T) {
	d := mustParse(t, "acc localaccess(e) bounds(off[min(i, n-1)], off[i+1]-1)")
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.Lower != "off[min(i, n-1)]" {
		t.Fatalf("nested args broken: %q", la.Lower)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindData, KindParallelLoop, KindUpdate, KindLocalAccess, KindReductionToArray}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("Kind %d has bad String %q", k, s)
		}
		seen[s] = true
	}
	for _, c := range []DataClass{ClassCopy, ClassCopyIn, ClassCopyOut, ClassCreate} {
		if c.String() == "" {
			t.Errorf("DataClass %d has empty String", c)
		}
	}
}

// Property: any directive assembled from valid identifiers parses, and
// DataArgs returns them in order.
func TestDataArgsProperty(t *testing.T) {
	names := []string{"a", "b2", "cc", "xs", "tmp", "zz9"}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 8 {
			return true
		}
		var used []string
		for _, p := range picks {
			used = append(used, names[int(p)%len(names)])
		}
		text := "acc data copyin(" + strings.Join(used, ", ") + ")"
		d, err := ParseDirective(text, 1)
		if err != nil {
			return false
		}
		args, err := d.DataArgs()
		if err != nil || len(args) != len(used) {
			return false
		}
		for i := range used {
			if args[i].Array != used[i] || args[i].Class != ClassCopyIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
