package acc

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, text string) *Directive {
	t.Helper()
	d, err := ParseDirective(text, 1)
	if err != nil {
		t.Fatalf("ParseDirective(%q): %v", text, err)
	}
	return d
}

func TestParseDataDirective(t *testing.T) {
	d := mustParse(t, "acc data copyin(a, b) copy(c) copyout(d) create(tmp)")
	if d.Kind != KindData {
		t.Fatalf("kind = %v", d.Kind)
	}
	args, err := d.DataArgs()
	if err != nil {
		t.Fatal(err)
	}
	want := []DataArg{
		{"a", ClassCopyIn}, {"b", ClassCopyIn},
		{"c", ClassCopy}, {"d", ClassCopyOut}, {"tmp", ClassCreate},
	}
	if len(args) != len(want) {
		t.Fatalf("args = %v", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("arg %d = %v, want %v", i, args[i], want[i])
		}
	}
}

func TestParseParallelLoop(t *testing.T) {
	d := mustParse(t, "acc parallel loop gang vector reduction(+:sum) reduction(max:m) copyin(x)")
	if d.Kind != KindParallelLoop {
		t.Fatalf("kind = %v", d.Kind)
	}
	reds, err := d.Reductions()
	if err != nil {
		t.Fatal(err)
	}
	if len(reds) != 2 || reds[0] != (Reduction{"+", "sum"}) || reds[1] != (Reduction{"max", "m"}) {
		t.Fatalf("reductions = %v", reds)
	}
	if _, ok := d.Clause("gang"); !ok {
		t.Error("gang clause missing")
	}
}

func TestParseKernelsLoop(t *testing.T) {
	d := mustParse(t, "acc kernels loop")
	if d.Kind != KindParallelLoop {
		t.Fatalf("kind = %v", d.Kind)
	}
}

func TestParseUpdate(t *testing.T) {
	d := mustParse(t, "acc update host(newc, count) device(clusters)")
	if d.Kind != KindUpdate {
		t.Fatalf("kind = %v", d.Kind)
	}
	h, _ := d.Clause("host")
	if len(h.Args) != 2 || h.Args[0] != "newc" {
		t.Fatalf("host args = %v", h.Args)
	}
}

func TestParseLocalAccessStride(t *testing.T) {
	// The 1/2/3-argument forms of the stride clause, including the
	// symmetric-halo shorthand stride(s, h) == stride(s, h, h).
	tests := []struct {
		text                string
		array               string
		stride, left, right string
	}{
		{"acc localaccess(nbr) stride(128)", "nbr", "128", "0", "0"},
		{"acc localaccess(x) stride(1, 2)", "x", "1", "2", "2"},
		{"acc localaccess(x) stride(1, 2, 3)", "x", "1", "2", "3"},
		{"acc localaccess(x) stride(n/4)", "x", "n/4", "0", "0"},
		{"acc localaccess(x) stride(1, 0, 2)", "x", "1", "0", "2"},
		{"acc localaccess(x) stride(2, halo)", "x", "2", "halo", "halo"},
	}
	for _, tc := range tests {
		t.Run(tc.text, func(t *testing.T) {
			la, err := ParseLocalAccess(mustParse(t, tc.text))
			if err != nil {
				t.Fatal(err)
			}
			if !la.HasStride {
				t.Fatal("HasStride = false")
			}
			if la.Array != tc.array || la.Stride != tc.stride || la.Left != tc.left || la.Right != tc.right {
				t.Fatalf("la = %+v, want array=%s stride=%s left=%s right=%s",
					la, tc.array, tc.stride, tc.left, tc.right)
			}
		})
	}
}

func TestLocalAccessClausePositions(t *testing.T) {
	// Columns flow from ParseDirectiveAt through to the structured
	// LocalAccess, and clause-level errors report the clause position.
	text := "acc localaccess(x) stride(1, 2)"
	d, err := ParseDirectiveAt(text, 3, 13) // as if "#pragma " ends at col 12
	if err != nil {
		t.Fatal(err)
	}
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	wantHead := 13 + strings.Index(text, "localaccess")
	wantStride := 13 + strings.Index(text, "stride")
	if la.Col != wantHead || la.ClauseCol != wantStride {
		t.Fatalf("Col = %d, ClauseCol = %d, want %d, %d", la.Col, la.ClauseCol, wantHead, wantStride)
	}

	bad := "acc localaccess(x) stride(1, 2, 3, 4)"
	d, err = ParseDirectiveAt(bad, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParseLocalAccess(d)
	if err == nil {
		t.Fatal("4-arg stride should fail")
	}
	wantPos := fmt.Sprintf("line 3, col %d", 13+strings.Index(bad, "stride"))
	if !strings.Contains(err.Error(), wantPos) {
		t.Fatalf("error %q should carry the stride clause position %q", err, wantPos)
	}
}

func TestParseLocalAccessBounds(t *testing.T) {
	d := mustParse(t, "acc localaccess(edges) bounds(off[i], off[i+1]-1)")
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.HasStride {
		t.Fatal("bounds form should not report stride")
	}
	if la.Lower != "off[i]" || la.Upper != "off[i+1]-1" {
		t.Fatalf("bounds = %q, %q", la.Lower, la.Upper)
	}
}

func TestParseLocalAccessErrors(t *testing.T) {
	for _, text := range []string{
		"acc localaccess(x)",                        // no clause
		"acc localaccess(x) stride(1) bounds(0, 1)", // both
		"acc localaccess(x) stride()",               // empty
		"acc localaccess(x) stride(1, 2, 3, 4)",     // too many
		"acc localaccess(x) bounds(0)",              // too few
		"acc localaccess(x) bounds()",               // no bounds args
		"acc localaccess(x) bounds(0, 1, 2)",        // too many bounds
		"acc localaccess(x) stride( , 1)",           // empty first arg
		"acc localaccess(x) stride(1, )",            // empty trailing arg
		"acc localaccess(x, y) stride(1)",           // two arrays
		"acc localaccess(3x) stride(1)",             // bad name
	} {
		d, err := ParseDirective(text, 1)
		if err != nil {
			continue // rejected at directive level is fine too
		}
		if _, err := ParseLocalAccess(d); err == nil {
			t.Errorf("ParseLocalAccess(%q) should fail", text)
		}
	}
}

func TestParseReductionToArray(t *testing.T) {
	d := mustParse(t, "acc reductiontoarray(+: newc[m*nf + f])")
	r, err := ParseReductionToArray(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Op != "+" || r.Array != "newc" || r.Index != "m*nf + f" {
		t.Fatalf("r = %+v", r)
	}
}

func TestParseReductionToArrayErrors(t *testing.T) {
	for _, text := range []string{
		"acc reductiontoarray(newc[i])",    // no op
		"acc reductiontoarray(+: newc)",    // no index
		"acc reductiontoarray(?: newc[i])", // bad op
		"acc reductiontoarray(+: [i])",     // no array
	} {
		d, err := ParseDirective(text, 1)
		if err != nil {
			continue
		}
		if _, err := ParseReductionToArray(d); err == nil {
			t.Errorf("ParseReductionToArray(%q) should fail", text)
		}
	}
}

func TestParseDirectiveErrors(t *testing.T) {
	for _, text := range []string{
		"omp parallel for",                   // not acc
		"acc",                                // empty
		"acc frobnicate",                     // unknown
		"acc parallel",                       // bare parallel unsupported
		"acc data copyin(a",                  // unbalanced
		"acc data copyin(a,,b)",              // empty arg
		"acc data copyin(a) gang",            // clause invalid on data
		"acc update copyin(a)",               // clause invalid on update
		"acc parallel loop reduction(sum)",   // reduction missing op
		"acc parallel loop reduction(%:x)",   // bad op
		"acc parallel loop reduction(+:a.b)", // not an identifier
		"acc data copyin(a+b)",               // not an identifier
	} {
		d, err := ParseDirective(text, 7)
		if err == nil {
			// Some are only caught by the typed extractors.
			if _, e2 := d.DataArgs(); e2 != nil {
				continue
			}
			if _, e2 := d.Reductions(); e2 != nil {
				continue
			}
			t.Errorf("ParseDirective(%q) should fail", text)
		} else if !strings.Contains(err.Error(), "line 7") {
			t.Errorf("error should carry line number: %v", err)
		}
	}
}

func TestNestedParensInClauseArgs(t *testing.T) {
	d := mustParse(t, "acc localaccess(e) bounds(off[min(i, n-1)], off[i+1]-1)")
	la, err := ParseLocalAccess(d)
	if err != nil {
		t.Fatal(err)
	}
	if la.Lower != "off[min(i, n-1)]" {
		t.Fatalf("nested args broken: %q", la.Lower)
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindData, KindParallelLoop, KindUpdate, KindLocalAccess, KindReductionToArray}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("Kind %d has bad String %q", k, s)
		}
		seen[s] = true
	}
	for _, c := range []DataClass{ClassCopy, ClassCopyIn, ClassCopyOut, ClassCreate} {
		if c.String() == "" {
			t.Errorf("DataClass %d has empty String", c)
		}
	}
}

// Property: any directive assembled from valid identifiers parses, and
// DataArgs returns them in order.
func TestDataArgsProperty(t *testing.T) {
	names := []string{"a", "b2", "cc", "xs", "tmp", "zz9"}
	f := func(picks []uint8) bool {
		if len(picks) == 0 || len(picks) > 8 {
			return true
		}
		var used []string
		for _, p := range picks {
			used = append(used, names[int(p)%len(names)])
		}
		text := "acc data copyin(" + strings.Join(used, ", ") + ")"
		d, err := ParseDirective(text, 1)
		if err != nil {
			return false
		}
		args, err := d.DataArgs()
		if err != nil || len(args) != len(used) {
			return false
		}
		for i := range used {
			if args[i].Array != used[i] || args[i].Class != ClassCopyIn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
