package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Every program shipped under examples/ carries a golden .diag file
// holding exactly what `accc -vet` prints for it (empty for clean
// programs). The examples/vet directory additionally serves as the
// diagnostic showcase: across its programs every ACCV code must occur.

func TestVetGoldenDiagnostics(t *testing.T) {
	dirs := []string{
		filepath.Join("..", "..", "examples", "testdata"),
		filepath.Join("..", "..", "examples", "vet"),
	}
	codes := map[string]bool{}
	checked := 0
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), ".c") {
				continue
			}
			checked++
			path := filepath.Join(dir, e.Name())
			t.Run(e.Name(), func(t *testing.T) {
				src, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				golden, err := os.ReadFile(strings.TrimSuffix(path, ".c") + ".diag")
				if err != nil {
					t.Fatalf("every example needs a golden .diag file: %v", err)
				}
				prog, err := Compile(string(src))
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				res, err := prog.Vet()
				if err != nil {
					t.Fatalf("vet: %v", err)
				}
				got := res.Diags.Format(e.Name())
				if got != string(golden) {
					t.Errorf("diagnostics changed.\n--- got ---\n%s--- want ---\n%s", got, golden)
				}
				for _, d := range res.Diags {
					codes[d.Code] = true
				}
			})
		}
	}
	if checked < 10 {
		t.Fatalf("only %d example programs checked; the example set shrank", checked)
	}
	for _, code := range []string{
		"ACCV001", "ACCV002", "ACCV003", "ACCV004", "ACCV005", "ACCV006",
		"ACCV007", "ACCV008", "ACCV009", "ACCV010", "ACCV011", "ACCV012",
	} {
		if !codes[code] {
			t.Errorf("no example under examples/ exercises %s", code)
		}
	}
}
