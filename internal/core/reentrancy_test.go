package core

import (
	"fmt"
	"sync"
	"testing"

	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// Re-entrancy coverage for the shared-Program contract that the accd
// service relies on: one Compile, many concurrent RunOn calls (each
// with its own machine, bindings and runtime), every result
// bit-identical to the serial run of the same parameters. Run under
// `go test -race` this doubles as the data-race proof that the
// compiled Module really is immutable after Compile returns.

const reentrantSrc = `
int n, steps;
float a[n], b[n], total[1];

void main() {
    int t, i;
    #pragma acc data copy(a, total) create(b)
    {
        for (t = 0; t < steps; t++) {
            #pragma acc localaccess(a) stride(1, 1, 1)
            #pragma acc localaccess(b) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                if (i > 0 && i < n - 1) {
                    b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
                } else {
                    b[i] = a[i];
                }
            }
            #pragma acc localaccess(b) stride(1)
            #pragma acc localaccess(a) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                a[i] = b[i];
            }
        }
        #pragma acc localaccess(a) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            #pragma acc reductiontoarray(+: total[0])
            total[0] += a[i];
        }
    }
}
`

// reentrantParams is one workload variant: distinct sizes, machines
// and option sets exercise different plans from the same Module.
type reentrantParams struct {
	n, steps float64
	spec     sim.MachineSpec
	opts     rt.Options
	seed     int64
}

func reentrantVariants() []reentrantParams {
	noSpec := rt.Options{DisableSpecialize: true}
	async := rt.Options{Async: true}
	return []reentrantParams{
		{n: 64, steps: 3, spec: sim.Desktop(), seed: 1},
		{n: 257, steps: 2, spec: sim.Desktop(), opts: noSpec, seed: 2},
		{n: 128, steps: 4, spec: sim.SupercomputerNode(), seed: 3},
		{n: 96, steps: 1, spec: sim.SupercomputerNode(), opts: async, seed: 4},
		{n: 200, steps: 2, spec: sim.Desktop(), opts: async, seed: 5},
	}
}

// runShared executes the shared program once for the given variant on
// a fresh machine, returning the report and final arrays.
func runShared(prog *Program, p reentrantParams) (*rt.Report, []*ir.HostArray, error) {
	b := ir.NewBindings().SetScalar("n", p.n).SetScalar("steps", p.steps)
	inst, err := prog.Module.Bind(b)
	if err != nil {
		return nil, nil, err
	}
	fillDeterministic(inst, p.seed)
	mach, err := sim.NewMachine(p.spec)
	if err != nil {
		return nil, nil, err
	}
	runtime := rt.New(mach, p.opts)
	if err := runtime.Run(inst); err != nil {
		return nil, nil, err
	}
	return runtime.Report(), inst.Arrays, nil
}

func TestProgramReentrantUnderRace(t *testing.T) {
	prog, err := Compile(reentrantSrc)
	if err != nil {
		t.Fatal(err)
	}
	variants := reentrantVariants()

	// Serial baselines, one per variant, from the same shared Program.
	baseRep := make([]*rt.Report, len(variants))
	baseArr := make([][]*ir.HostArray, len(variants))
	for i, p := range variants {
		rep, arr, err := runShared(prog, p)
		if err != nil {
			t.Fatal(err)
		}
		baseRep[i], baseArr[i] = rep, arr
	}

	// Hammer the one Program from many goroutines; every run must be
	// bit-identical to its serial baseline.
	const workers, rounds = 16, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(variants)
				rep, arr, err := runShared(prog, variants[i])
				if err != nil {
					errs <- fmt.Errorf("worker %d round %d: %v", w, r, err)
					return
				}
				if err := diffSharedRun(baseRep[i], rep, baseArr[i], arr); err != nil {
					errs <- fmt.Errorf("worker %d round %d (variant %d): %v", w, r, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// diffSharedRun is checkSameRun without the testing.T plumbing, so it
// can run inside worker goroutines.
func diffSharedRun(wantRep, gotRep *rt.Report, want, got []*ir.HostArray) error {
	wantS, gotS := fmt.Sprintf("%+v", wantRep), fmt.Sprintf("%+v", gotRep)
	if wantS != gotS {
		return fmt.Errorf("report diverged\nwant %s\ngot  %s", wantS, gotS)
	}
	if len(want) != len(got) {
		return fmt.Errorf("array count diverged: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if fmt.Sprint(want[i].F32) != fmt.Sprint(got[i].F32) ||
			fmt.Sprint(want[i].F64) != fmt.Sprint(got[i].F64) ||
			fmt.Sprint(want[i].I32) != fmt.Sprint(got[i].I32) {
			return fmt.Errorf("array %q diverged", want[i].Decl.Name)
		}
	}
	return nil
}
