package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	goruntime "runtime"
	"testing"

	"accmulti/internal/apps"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// Report-invariance coverage for the host-side performance layer over
// every shipped example program and evaluation app: the plan cache and
// the host parallelism must leave the virtual-time report and all
// computed arrays bit-identical — on by default, forced off, and under
// GOMAXPROCS=1.

// perfVariants returns the option sets compared against the default.
func perfVariants(base rt.Options) map[string]rt.Options {
	serial, noCache, noSpec := base, base, base
	serial.DisableHostParallel = true
	noCache.DisablePlanCache = true
	noSpec.DisableSpecialize = true
	both := serial
	both.DisablePlanCache = true
	both.DisableSpecialize = true
	return map[string]rt.Options{
		"no-host-parallel": serial,
		"no-plan-cache":    noCache,
		"no-specialize":    noSpec,
		"all-serial":       both,
	}
}

// fillDeterministic gives every instance array reproducible nonzero
// content so the loader and diff paths move real data.
func fillDeterministic(inst *ir.Instance, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, a := range inst.Arrays {
		switch {
		case a.F32 != nil:
			for i := range a.F32 {
				a.F32[i] = rng.Float32()
			}
		case a.F64 != nil:
			for i := range a.F64 {
				a.F64[i] = rng.Float64()
			}
		default:
			for i := range a.I32 {
				a.I32[i] = int32(rng.Intn(1 << 16))
			}
		}
	}
}

// runExample executes one example source at fixed bindings and returns
// the report plus final array contents.
func runExample(t *testing.T, src string, scalars map[string]float64, spec sim.MachineSpec, opts rt.Options) (*rt.Report, []*ir.HostArray) {
	t.Helper()
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	b := ir.NewBindings()
	for k, v := range scalars {
		b.SetScalar(k, v)
	}
	inst, err := prog.Module.Bind(b)
	if err != nil {
		t.Fatal(err)
	}
	fillDeterministic(inst, 7)
	mach, err := sim.NewMachine(spec)
	if err != nil {
		t.Fatal(err)
	}
	runtime := rt.New(mach, opts)
	if err := runtime.Run(inst); err != nil {
		t.Fatal(err)
	}
	return runtime.Report(), inst.Arrays
}

func checkSameRun(t *testing.T, label string, wantRep, gotRep *rt.Report, want, got []*ir.HostArray) {
	t.Helper()
	if !reflect.DeepEqual(wantRep, gotRep) {
		t.Fatalf("%s: Report diverged\nwant %+v\ngot  %+v", label, wantRep, gotRep)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i].F32, got[i].F32) ||
			!reflect.DeepEqual(want[i].F64, got[i].F64) ||
			!reflect.DeepEqual(want[i].I32, got[i].I32) {
			t.Fatalf("%s: array %q diverged", label, want[i].Decl.Name)
		}
	}
}

func TestExamplesReportInvariance(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "testdata")
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found in %s (%v)", dir, err)
	}
	for _, path := range files {
		name := filepath.Base(path)
		want, ok := goldenPrograms[name]
		if !ok {
			continue // golden_test already flags the missing entry
		}
		t.Run(name, func(t *testing.T) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			for _, spec := range []sim.MachineSpec{sim.Desktop(), sim.SupercomputerNode()} {
				refRep, refArr := runExample(t, src, want.scalars, spec, rt.Options{})
				for vname, opts := range perfVariants(rt.Options{}) {
					rep, arr := runExample(t, src, want.scalars, spec, opts)
					checkSameRun(t, fmt.Sprintf("%s on %s (%s)", name, spec.Name, vname), refRep, rep, refArr, arr)
				}
				prev := goruntime.GOMAXPROCS(1)
				rep, arr := runExample(t, src, want.scalars, spec, rt.Options{})
				goruntime.GOMAXPROCS(prev)
				checkSameRun(t, fmt.Sprintf("%s on %s (GOMAXPROCS=1)", name, spec.Name), refRep, rep, refArr, arr)
			}
		})
	}
}

func TestAppsReportInvariance(t *testing.T) {
	scales := map[string]float64{"MD": 0.03, "KMEANS": 0.004, "BFS": 0.002}
	list := apps.All()
	if testing.Short() {
		list = list[:1]
	}
	for _, app := range list {
		t.Run(app.Name, func(t *testing.T) {
			prog, err := Compile(app.Source)
			if err != nil {
				t.Fatal(err)
			}
			run := func(opts rt.Options) *Result {
				in, err := app.Generate(scales[app.Name], 42)
				if err != nil {
					t.Fatal(err)
				}
				res, err := prog.Run(in.Bindings, Config{Machine: sim.Desktop().WithGPUs(4), Options: opts})
				if err != nil {
					t.Fatal(err)
				}
				if err := in.Verify(res.Instance); err != nil {
					t.Fatal(err)
				}
				return res
			}
			ref := run(rt.Options{})
			for vname, opts := range perfVariants(rt.Options{}) {
				res := run(opts)
				if !reflect.DeepEqual(ref.Report, res.Report) {
					t.Fatalf("%s (%s): Report diverged\nwant %+v\ngot  %+v", app.Name, vname, ref.Report, res.Report)
				}
			}
			prev := goruntime.GOMAXPROCS(1)
			res := run(rt.Options{})
			goruntime.GOMAXPROCS(prev)
			if !reflect.DeepEqual(ref.Report, res.Report) {
				t.Fatalf("%s (GOMAXPROCS=1): Report diverged", app.Name)
			}
		})
	}
}
