// Package core ties the reproduction together: it compiles OpenACC C
// source through the frontend and translator, binds inputs, and runs
// the result on a simulated machine under one of the runtime modes.
// It is the programmatic entry point used by the public facade, the
// command-line tools and the benchmark harness.
package core

import (
	"fmt"

	"accmulti/internal/analysis"
	"accmulti/internal/audit"
	"accmulti/internal/cc"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
	"accmulti/internal/trace"
	"accmulti/internal/translator"
)

// Program is a compiled OpenACC program.
type Program struct {
	// Module is the executable translation.
	Module *ir.Module
	// Source is the type-checked AST the module was translated from.
	Source *cc.Program
}

// Compile parses, analyzes and translates OpenACC C source.
func Compile(source string) (*Program, error) {
	prog, err := cc.ParseProgram(source)
	if err != nil {
		return nil, err
	}
	mod, err := translator.Translate(prog)
	if err != nil {
		return nil, err
	}
	return &Program{Module: mod, Source: prog}, nil
}

// GeneratedSource returns the translator's CUDA-like output.
func (p *Program) GeneratedSource() string { return p.Module.GeneratedSource }

// Vet runs the accvet directive-verification pass over the compiled
// program, returning its diagnostics and footprint-safety verdicts.
func (p *Program) Vet() (*analysis.Result, error) { return analysis.Vet(p.Source) }

// Config selects the platform and runtime behaviour of one run.
type Config struct {
	// Machine is the simulated platform (defaults to the desktop).
	Machine sim.MachineSpec
	// Options select the runtime mode and ablation switches.
	Options rt.Options
	// Audit installs the shadow-oracle consistency auditor: every
	// kernel re-executes sequentially on a host oracle and every device
	// copy is verified after each communication step.
	Audit bool
	// AuditTolerance overrides the relative tolerance for reassociated
	// float reductions (0 = the auditor's default).
	AuditTolerance float64
	// Faults arms deterministic fault injection on the machine before
	// the run (see sim.ParseFaultPlan for the accrun -faults syntax).
	Faults *sim.FaultPlan
	// Trace, when non-nil, collects structured spans and aggregate
	// metrics for the run (see internal/trace): export them afterwards
	// with trace.WriteChrome / Metrics().WriteJSON. Equivalent to
	// setting Options.Tracer directly; a tracer may be shared across
	// several runs to collect them into one file.
	Trace *trace.Tracer
}

// Result carries everything a run produced.
type Result struct {
	// Report is the runtime's accounting (times, bytes, memory).
	Report *rt.Report
	// Instance exposes the final host arrays and scalars.
	Instance *ir.Instance
	// Runtime gives access to per-kernel execution counts.
	Runtime *rt.Runtime
}

// Run binds inputs and executes the program under the configuration
// on a machine instantiated for this run alone.
func (p *Program) Run(b *ir.Bindings, cfg Config) (*Result, error) {
	if cfg.Machine.Name == "" {
		cfg.Machine = sim.Desktop()
	}
	mach, err := sim.NewMachine(cfg.Machine)
	if err != nil {
		return nil, err
	}
	return p.RunOn(mach, b, cfg)
}

// RunOn binds inputs and executes the program on an existing machine
// instance — the entry point for callers that lease machines from a
// shared pool (the accd service). cfg.Machine is ignored; the caller
// owns the machine's lifecycle. A fault plan in cfg is injected and
// left armed afterwards, so pooled machines that ran with faults must
// not be reused (MemShrink permanently scales the device capacities).
//
// RunOn is safe to call concurrently on one shared Program: every
// piece of per-run state (instance, runtime, report, tracer lanes)
// is created here, and the compiled Module is never mutated after
// Compile returns. Concurrent runs must use distinct machines and
// distinct Bindings.
func (p *Program) RunOn(mach *sim.Machine, b *ir.Bindings, cfg Config) (*Result, error) {
	inst, err := p.Module.Bind(b)
	if err != nil {
		return nil, err
	}
	if cfg.Faults.Active() {
		mach.InjectFaults(cfg.Faults)
	}
	if cfg.Audit && cfg.Options.Auditor == nil {
		cfg.Options.Auditor = audit.New(audit.Options{Tolerance: cfg.AuditTolerance})
	}
	if cfg.Trace != nil && cfg.Options.Tracer == nil {
		cfg.Options.Tracer = cfg.Trace
	}
	runtime := rt.New(mach, cfg.Options)
	if err := runtime.Run(inst); err != nil {
		return nil, err
	}
	return &Result{Report: runtime.Report(), Instance: inst, Runtime: runtime}, nil
}

// Stats summarizes the program the way the paper's Table II does.
type Stats struct {
	// ParallelLoops is the number of translated kernels (column B).
	ParallelLoops int
	// ArraysInLoops is the number of distinct arrays used across all
	// parallel loops.
	ArraysInLoops int
	// LocalAccessArrays is how many of those carry a localaccess
	// directive in at least one loop (column D's numerator).
	LocalAccessArrays int
	// ReductionArrays counts reductiontoarray targets.
	ReductionArrays int
}

// Stats computes the static program statistics.
func (p *Program) Stats() Stats {
	s := Stats{ParallelLoops: len(p.Module.Kernels)}
	inLoops := map[string]bool{}
	local := map[string]bool{}
	reds := map[string]bool{}
	for _, k := range p.Module.Kernels {
		for _, u := range k.Arrays {
			inLoops[u.Decl.Name] = true
			if u.Local != nil {
				local[u.Decl.Name] = true
			}
			if u.Reduced {
				reds[u.Decl.Name] = true
			}
		}
	}
	s.ArraysInLoops = len(inLoops)
	s.LocalAccessArrays = len(local)
	s.ReductionArrays = len(reds)
	return s
}

// DeviceMemoryUsage evaluates the single-GPU device footprint of the
// bound program's arrays (Table II column A): the bytes a 1-GPU run
// keeps resident for the program's device arrays.
func DeviceMemoryUsage(p *Program, b *ir.Bindings) (int64, error) {
	inst, err := p.Module.Bind(b)
	if err != nil {
		return 0, err
	}
	var total int64
	seen := map[string]bool{}
	for _, k := range p.Module.Kernels {
		for _, u := range k.Arrays {
			if seen[u.Decl.Name] {
				continue
			}
			seen[u.Decl.Name] = true
			total += inst.Arrays[u.Decl.Slot].Bytes()
		}
	}
	return total, nil
}

// FormatStats renders Stats in the style of Table II's B-D columns.
func FormatStats(s Stats) string {
	return fmt.Sprintf("loops=%d localaccess=%d/%d reductions=%d",
		s.ParallelLoops, s.LocalAccessArrays, s.ArraysInLoops, s.ReductionArrays)
}
