package core

import (
	"path/filepath"
	"testing"

	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
	"accmulti/internal/trace"
)

// Structural overlap gates for the pipelined scheduler: beyond the
// byte-pinned golden, these assert that the async trace actually shows
// the overlap the scheduler exists to create — communication spans
// running concurrently with kernel spans in simulated time. Under the
// synchronous schedule every one of these pairs is disjoint by
// construction (Phase A / Phase B / Phase C barriers).

// spansOverlap reports strict overlap: each span starts before the
// other ends. Instants (Begin == End) never overlap anything.
func spansOverlap(a, b trace.Span) bool {
	return a.Begin < b.End && b.Begin < a.End && a.Begin < a.End && b.Begin < b.End
}

// countOverlaps counts pairs of one commKind span and one kernel span
// (either executor) that strictly overlap.
func countOverlaps(spans []trace.Span, commKind trace.Kind) int {
	n := 0
	for _, c := range spans {
		if c.Kind != commKind {
			continue
		}
		for _, k := range spans {
			if (k.Kind == trace.KindKernel || k.Kind == trace.KindSpecKernel) && spansOverlap(c, k) {
				n++
			}
		}
	}
	return n
}

// overlapSrc is the communication-bound two-sweep program used for the
// H2D-overlap assertion: sweep 1 is a stencil on a_ writing b_ with
// exact-partition locality, and sweep 2 is pointwise in b_ (so b_
// never needs redistribution — no gathers, no halo pushes between the
// sweeps) while scaling by a coefficient table c_ that sweep 1 never
// touches. Sweep 2's Phase A is then exactly one fresh load — c_ —
// with an empty bus queue ahead of it, so the scheduler ships it the
// moment sweep 1's kernels start computing.
const overlapSrc = `
int n;
float a_[n], b_[n], c_[n];

void main() {
    int i;
    #pragma acc data copy(a_, b_) copyin(c_)
    {
        #pragma acc localaccess(a_) stride(1, 1, 1)
        #pragma acc localaccess(b_) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            if (i > 0 && i < n - 1) {
                b_[i] = 0.25 * a_[i - 1] + 0.5 * a_[i] + 0.25 * a_[i + 1];
            } else {
                b_[i] = a_[i];
            }
        }
        #pragma acc localaccess(b_) stride(1)
        #pragma acc localaccess(a_) stride(1)
        #pragma acc localaccess(c_) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            a_[i] = c_[i] * b_[i];
        }
    }
}
`

// TestAsyncOverlapObserved asserts the pipelining is visible in trace
// time on the communication-bound stencil examples: at least one H2D
// span overlaps a kernel span (a later kernel's load running under an
// earlier kernel), and at least one halo push overlaps a kernel span
// (boundary exchange departing before the producing sweep retires).
func TestAsyncOverlapObserved(t *testing.T) {
	// Part 1: the shipped stencil1d example (the golden's binding).
	// All its H2D happens in the very first batch, so the overlap the
	// async schedule creates there is halo-vs-kernel.
	stencilSrc := embeddedSource(t, filepath.Join("..", "..", "examples", "stencil1d", "main.go"))
	const n, steps = 1 << 20, 3
	prog, err := Compile(stencilSrc)
	if err != nil {
		t.Fatal(err)
	}
	a := &ir.HostArray{F32: make([]float32, n)}
	a.F32[n/2] = 1000
	bind := ir.NewBindings().
		SetScalar("n", n).SetScalar("steps", steps).SetArray("a", a)
	tr := trace.New()
	if _, err := prog.Run(bind, Config{
		Machine: sim.Desktop().WithGPUs(4), Trace: tr,
		Options: rt.Options{Async: true},
	}); err != nil {
		t.Fatal(err)
	}
	if got := countOverlaps(tr.Spans(), trace.KindHalo); got == 0 {
		t.Error("async stencil1d: no halo span overlaps a kernel span")
	}

	// Part 2: the coefficient-table variant, where sweep 2's fresh
	// copyin must load while sweep 1 computes.
	prog2, err := Compile(overlapSrc)
	if err != nil {
		t.Fatal(err)
	}
	const n2 = 1 << 20
	av := &ir.HostArray{F32: make([]float32, n2)}
	cv := &ir.HostArray{F32: make([]float32, n2)}
	for i := range av.F32 {
		av.F32[i] = float32(i%97) * 0.25
		cv.F32[i] = 1 + float32(i%5)*0.125
	}
	bind2 := ir.NewBindings().SetScalar("n", n2).SetArray("a_", av).SetArray("c_", cv)
	tr2 := trace.New()
	if _, err := prog2.Run(bind2, Config{
		Machine: sim.Desktop().WithGPUs(4), Trace: tr2,
		Options: rt.Options{Async: true},
	}); err != nil {
		t.Fatal(err)
	}
	if got := countOverlaps(tr2.Spans(), trace.KindH2D); got == 0 {
		t.Error("async coefficient stencil: no H2D span overlaps a kernel span")
	}

	// Control: the synchronous schedule of the same program has no
	// comm/kernel overlap at all — the phases are barriers.
	trSync := trace.New()
	bind3 := ir.NewBindings().SetScalar("n", n2).SetArray("a_", av).SetArray("c_", cv)
	if _, err := prog2.Run(bind3, Config{
		Machine: sim.Desktop().WithGPUs(4), Trace: trSync,
	}); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []trace.Kind{trace.KindH2D, trace.KindHalo, trace.KindGather} {
		if got := countOverlaps(trSync.Spans(), kind); got != 0 {
			t.Errorf("sync schedule shows %d %v/kernel overlaps; phases should be barriers", got, kind)
		}
	}
}
