package core

import (
	"strings"
	"testing"

	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

const coreSrc = `
int n;
float x[n], out[n];
float total;

void main() {
    int i;
    total = 0.0;
    #pragma acc data copyin(x) copyout(out)
    {
        #pragma acc localaccess(x) stride(1)
        #pragma acc localaccess(out) stride(1)
        #pragma acc parallel loop reduction(+:total)
        for (i = 0; i < n; i++) {
            out[i] = x[i] * x[i];
            total += out[i];
        }
    }
}
`

func TestCompileAndRun(t *testing.T) {
	prog, err := Compile(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	n := 1000
	xd := ir.NewHostArray(prog.Module.Prog.Scope["x"], int64(n))
	for i := range xd.F32 {
		xd.F32[i] = 2
	}
	res, err := prog.Run(
		ir.NewBindings().SetScalar("n", float64(n)).SetArray("x", xd),
		Config{Machine: sim.SupercomputerNode()},
	)
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Instance.Array("out")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out.F32[i] != 4 {
			t.Fatalf("out[%d] = %g", i, out.F32[i])
		}
	}
	total, _ := res.Instance.ScalarF("total")
	if total != float64(4*n) {
		t.Errorf("total = %g, want %d", total, 4*n)
	}
	if res.Runtime.KernelExecs()[0] != 1 {
		t.Errorf("kernel execs = %v", res.Runtime.KernelExecs())
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		"int n void main() { }",  // parse error
		"void main() { y = 1; }", // sema error
		"int n; float a[n];\nvoid main() { int i;\n#pragma acc parallel loop\nfor (i = 0; i < n; i += 2) { a[i] = 0.0; } }", // translator error
	} {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestDefaultMachine(t *testing.T) {
	prog, err := Compile("int n;\nvoid main() { n = 1; }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime.Machine().Spec.Name != "Desktop Machine" {
		t.Errorf("default machine = %q", res.Runtime.Machine().Spec.Name)
	}
}

func TestStatsAndMemory(t *testing.T) {
	prog, err := Compile(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Stats()
	if s.ParallelLoops != 1 || s.ArraysInLoops != 2 || s.LocalAccessArrays != 2 || s.ReductionArrays != 0 {
		t.Errorf("stats = %+v", s)
	}
	if got := FormatStats(s); !strings.Contains(got, "loops=1") || !strings.Contains(got, "2/2") {
		t.Errorf("FormatStats = %q", got)
	}
	mem, err := DeviceMemoryUsage(prog, ir.NewBindings().SetScalar("n", 100))
	if err != nil {
		t.Fatal(err)
	}
	if mem != 800 { // x and out, 100 floats each
		t.Errorf("memory = %d, want 800", mem)
	}
}

func TestRunBadBindings(t *testing.T) {
	prog, err := Compile(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Run(ir.NewBindings().SetScalar("zzz", 1), Config{}); err == nil {
		t.Error("bad binding should fail")
	}
	if _, err := prog.Run(nil, Config{Machine: sim.MachineSpec{Name: "broken"}}); err == nil {
		t.Error("invalid machine should fail")
	}
}

func TestRunOutOfDeviceMemory(t *testing.T) {
	prog, err := Compile(coreSrc)
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.Desktop()
	spec.GPU.MemBytes = 1024 // tiny board
	_, err = prog.Run(
		ir.NewBindings().SetScalar("n", 100000),
		Config{Machine: spec, Options: rt.Options{}},
	)
	if err == nil || !strings.Contains(err.Error(), "out of memory") {
		t.Errorf("want device OOM, got %v", err)
	}
}
