package core

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"accmulti/internal/analysis"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
	"accmulti/internal/trace"
)

// Golden Chrome traces for three representative programs. Each .trace.json
// under examples/ is exactly what -trace writes for the pinned binding, so
// any change to the loader, the comm manager, the launch path or the cost
// model that moves a single span must regenerate the golden and explain the
// move in the diff:
//
//	go test ./internal/core -run TestTraceGolden -update-trace-goldens
var updateTraceGoldens = flag.Bool("update-trace-goldens", false,
	"rewrite the examples/*.trace.json golden files")

// embeddedSource extracts the backquoted `const source` program from an
// example's main.go, so the goldens track the shipped examples verbatim.
func embeddedSource(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	const marker = "const source = `"
	s := string(data)
	i := strings.Index(s, marker)
	if i < 0 {
		t.Fatalf("%s: no embedded source", path)
	}
	rest := s[i+len(marker):]
	j := strings.Index(rest, "`")
	if j < 0 {
		t.Fatalf("%s: unterminated embedded source", path)
	}
	return rest[:j]
}

// traceCases pin one program per subsystem flavor: the 4-GPU megaelement
// stencil (halo exchanges, the acceptance-criteria trace), kmeans
// (reductiontoarray hierarchies), and the vet showcase exchange program.
func traceCases(t *testing.T) []struct {
	name   string
	golden string
	run    func(t *testing.T, tr *trace.Tracer) *Result
} {
	exDir := filepath.Join("..", "..", "examples")
	stencilSrc := embeddedSource(t, filepath.Join(exDir, "stencil1d", "main.go"))
	kmeansSrc := embeddedSource(t, filepath.Join(exDir, "kmeans", "main.go"))
	exchangeFile := filepath.Join(exDir, "vet", "stencil_exchange.c")

	return []struct {
		name   string
		golden string
		run    func(t *testing.T, tr *trace.Tracer) *Result
	}{
		{
			name:   "stencil1d",
			golden: filepath.Join(exDir, "stencil1d", "stencil1d.trace.json"),
			run: func(t *testing.T, tr *trace.Tracer) *Result {
				const n, steps = 1 << 20, 3
				prog, err := Compile(stencilSrc)
				if err != nil {
					t.Fatal(err)
				}
				a := &ir.HostArray{F32: make([]float32, n)}
				a.F32[n/2] = 1000
				bind := ir.NewBindings().
					SetScalar("n", n).SetScalar("steps", steps).SetArray("a", a)
				res, err := prog.Run(bind, Config{Machine: sim.Desktop().WithGPUs(4), Trace: tr})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
		{
			// The same stencil binding under the pipelined scheduler:
			// the golden pins the overlapped schedule itself — halo
			// pushes departing at graded-write fractions of the
			// producing kernel, consuming kernels starting as soon as
			// their ghost cells land, GPUs running skewed.
			name:   "stencil1d-async",
			golden: filepath.Join(exDir, "stencil1d", "stencil1d.async.trace.json"),
			run: func(t *testing.T, tr *trace.Tracer) *Result {
				const n, steps = 1 << 20, 3
				prog, err := Compile(stencilSrc)
				if err != nil {
					t.Fatal(err)
				}
				a := &ir.HostArray{F32: make([]float32, n)}
				a.F32[n/2] = 1000
				bind := ir.NewBindings().
					SetScalar("n", n).SetScalar("steps", steps).SetArray("a", a)
				res, err := prog.Run(bind, Config{
					Machine: sim.Desktop().WithGPUs(4), Trace: tr,
					Options: rt.Options{Async: true},
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
		{
			// The same stencil on a 2-node x 2-GPU cluster: the golden
			// pins the node-level trace layout — halo pushes on the
			// per-node NIC lanes, labeled "nic" when they cross the
			// network and "p2p" when they stay inside a node, and
			// copy-ins to node 1 tagged with the NIC path.
			name:   "stencil1d-2x2",
			golden: filepath.Join(exDir, "stencil1d", "stencil1d.2x2.trace.json"),
			run: func(t *testing.T, tr *trace.Tracer) *Result {
				const n, steps = 1 << 20, 3
				prog, err := Compile(stencilSrc)
				if err != nil {
					t.Fatal(err)
				}
				a := &ir.HostArray{F32: make([]float32, n)}
				a.F32[n/2] = 1000
				bind := ir.NewBindings().
					SetScalar("n", n).SetScalar("steps", steps).SetArray("a", a)
				res, err := prog.Run(bind, Config{Machine: sim.Cluster(2, 2), Trace: tr})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
		{
			name:   "kmeans",
			golden: filepath.Join(exDir, "kmeans", "kmeans.trace.json"),
			run: func(t *testing.T, tr *trace.Tracer) *Result {
				const n, nf, k, iters = 2000, 4, 3, 2
				prog, err := Compile(kmeansSrc)
				if err != nil {
					t.Fatal(err)
				}
				feat := &ir.HostArray{F32: make([]float32, n*nf)}
				for i := range feat.F32 {
					// Deterministic pseudo-data; no RNG so the binding is a constant.
					feat.F32[i] = float32((i*2654435761)%1000) / 250
				}
				clusters := &ir.HostArray{F32: make([]float32, k*nf)}
				copy(clusters.F32, feat.F32[:k*nf])
				member := &ir.HostArray{I32: make([]int32, n)}
				bind := ir.NewBindings().
					SetScalar("n", n).SetScalar("nf", nf).SetScalar("k", k).SetScalar("iters", iters).
					SetArray("feat", feat).SetArray("clusters", clusters).SetArray("member", member)
				res, err := prog.Run(bind, Config{Machine: sim.Desktop(), Trace: tr})
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
		{
			name:   "stencil_exchange",
			golden: filepath.Join(exDir, "vet", "stencil_exchange.trace.json"),
			run: func(t *testing.T, tr *trace.Tracer) *Result {
				res, err := runExchange(exchangeFile, sim.Desktop().WithGPUs(4), tr)
				if err != nil {
					t.Fatal(err)
				}
				return res
			},
		},
	}
}

// runExchange runs examples/vet/stencil_exchange.c at n=256 on the given
// machine; shared with the metrics cross-checks below.
func runExchange(path string, spec sim.MachineSpec, tr *trace.Tracer) (*Result, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	prog, err := Compile(string(src))
	if err != nil {
		return nil, err
	}
	const n = 256
	a := &ir.HostArray{F32: make([]float32, n)}
	b := &ir.HostArray{F32: make([]float32, n)}
	for i := 0; i < n; i++ {
		a.F32[i] = float32(i % 17)
	}
	bind := ir.NewBindings().SetScalar("n", n).SetArray("a", a).SetArray("b", b)
	return prog.Run(bind, Config{Machine: spec, Trace: tr})
}

func chromeTrace(t *testing.T, tr *trace.Tracer) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTraceGolden(t *testing.T) {
	for _, tc := range traceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.New()
			tc.run(t, tr)
			got := chromeTrace(t, tr)

			// Determinism first: a second run must reproduce the bytes.
			tr2 := trace.New()
			tc.run(t, tr2)
			if !bytes.Equal(got, chromeTrace(t, tr2)) {
				t.Fatal("trace bytes differ across two identical runs; golden comparison would be meaningless")
			}
			if err := trace.CheckWellFormed(tr.Spans()); err != nil {
				t.Fatal(err)
			}

			if *updateTraceGoldens {
				if err := os.WriteFile(tc.golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes, %d spans)", tc.golden, len(got), len(tr.Spans()))
				return
			}

			want, err := os.ReadFile(tc.golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update-trace-goldens to create): %v", err)
			}
			if bytes.Equal(got, want) {
				return
			}
			// Bytes moved: report the first divergent span, not a wall of JSON.
			wantSpans, perr := trace.ParseChrome(want)
			if perr != nil {
				t.Fatalf("golden unparsable: %v", perr)
			}
			gotSpans, perr := trace.ParseChrome(got)
			if perr != nil {
				t.Fatalf("generated trace unparsable: %v", perr)
			}
			if diff := trace.DiffSpans(gotSpans, wantSpans); diff != "" {
				t.Fatalf("trace diverged from golden %s:\n%s", tc.golden, diff)
			}
			t.Fatalf("trace bytes diverged from golden %s with identical span structure (header or metadata change?)", tc.golden)
		})
	}
}

// TestTraceMetricsCrossCheck ties the three observability layers
// together on the vet showcase program: the metrics registry must agree
// with the Report's transfer accounting, the spec counters must agree
// with the runtime's own, and the halo-exchange spans must realize
// exactly the exchanges the static analyzer predicts via ACCV007.
func TestTraceMetricsCrossCheck(t *testing.T) {
	const gpus = 4
	path := filepath.Join("..", "..", "examples", "vet", "stencil_exchange.c")
	tr := trace.New()
	res, err := runExchange(path, sim.Desktop().WithGPUs(gpus), tr)
	if err != nil {
		t.Fatal(err)
	}
	m := tr.Metrics()

	// Metrics vs Report transfer totals.
	if got, want := m.Counter("bytes.h2d"), res.Report.BytesH2D; got != want {
		t.Errorf("bytes.h2d metric = %d, Report.BytesH2D = %d", got, want)
	}
	if got, want := m.Counter("bytes.d2h"), res.Report.BytesD2H; got != want {
		t.Errorf("bytes.d2h metric = %d, Report.BytesD2H = %d", got, want)
	}
	if got, want := m.Counter("bytes.p2p"), res.Report.BytesP2P; got != want {
		t.Errorf("bytes.p2p metric = %d, Report.BytesP2P = %d", got, want)
	}

	// Spec counters vs the runtime's own bookkeeping.
	if got, want := m.Counter("spec.hits"), res.Runtime.SpecHits(); got != want {
		t.Errorf("spec.hits metric = %d, Runtime.SpecHits() = %d", got, want)
	}
	if got, want := m.Counter("spec.fallbacks"), res.Runtime.SpecFallbacks(); got != want {
		t.Errorf("spec.fallbacks metric = %d, Runtime.SpecFallbacks() = %d", got, want)
	}

	// Halo spans vs the ACCV007 predictions. The vetter predicts an
	// exchange for exactly the arrays written distributed and re-read
	// with a halo footprint; the trace must show halo-exchange spans for
	// exactly those arrays and no others.
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(string(src))
	if err != nil {
		t.Fatal(err)
	}
	vet, err := prog.Vet()
	if err != nil {
		t.Fatal(err)
	}
	nameRe := regexp.MustCompile(`array "([^"]+)"`)
	predicted := map[string]bool{}
	for _, d := range vet.Diags.ByCode("ACCV007") {
		mm := nameRe.FindStringSubmatch(d.Message)
		if mm == nil {
			t.Fatalf("ACCV007 message without array name: %s", d.Message)
		}
		predicted[mm[1]] = true
	}
	if len(predicted) != 2 {
		t.Fatalf("expected ACCV007 for both stencil arrays, got %v", predicted)
	}
	haloCount := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Kind == trace.KindHalo {
			haloCount[s.Name]++
		}
	}
	for name := range haloCount {
		if !predicted[name] {
			t.Errorf("halo-exchange spans for %q, but no ACCV007 prediction", name)
		}
	}
	for name := range predicted {
		if haloCount[name] == 0 {
			t.Errorf("ACCV007 predicts an exchange for %q, but the trace has no halo-exchange spans", name)
		}
	}
	// The program iterates 10 times with two sweeps. Array "a" (written
	// by the second sweep, halo-read by the first) exchanges after each
	// of its 10 writer launches; "b" (written first, halo-read second)
	// has no resident halo windows yet on iteration 0, so it exchanges
	// only 9 times. Each exchange round moves both boundary elements of
	// every adjacent GPU pair: 2*(gpus-1) spans.
	perRound := 2 * (gpus - 1)
	if got, want := haloCount["a"], 10*perRound; got != want {
		t.Errorf(`halo spans for "a" = %d, ACCV007 predicts %d (10 rounds x %d)`, got, want, perRound)
	}
	if got, want := haloCount["b"], 9*perRound; got != want {
		t.Errorf(`halo spans for "b" = %d, ACCV007 predicts %d (9 rounds x %d)`, got, want, perRound)
	}
}

// TestMultiNodeTraceMetricsCrossCheck re-runs the showcase program on a
// 2-node x 2-GPU cluster and ties the static prediction to the node
// topology: analysis.ExchangeTransfers gives the per-round transfer
// count and how many of those must cross the network, and the trace's
// halo spans must realize exactly that split — "nic"-tagged spans for
// the node-boundary pair, unmarked or "p2p" spans inside a node. The
// runtime's halo-exchange events must report the same inter-node count.
func TestMultiNodeTraceMetricsCrossCheck(t *testing.T) {
	const nodes, gpus = 2, 4
	spec := sim.Cluster(nodes, gpus/nodes)
	path := filepath.Join("..", "..", "examples", "vet", "stencil_exchange.c")
	tr := trace.New()
	res, err := runExchange(path, spec, tr)
	if err != nil {
		t.Fatal(err)
	}

	perRound, interPerRound := analysis.ExchangeTransfers(nodes, gpus)
	rounds := map[string]int{"a": 10, "b": 9} // see TestTraceMetricsCrossCheck
	haloCount := map[string]int{}
	nicCount := map[string]int{}
	for _, s := range tr.Spans() {
		if s.Kind != trace.KindHalo {
			continue
		}
		haloCount[s.Name]++
		if s.Detail == "nic" {
			nicCount[s.Name]++
			if !spec.CrossNode(s.Src, s.Dst) {
				t.Errorf("halo span %q (%d -> %d) tagged nic inside one node", s.Name, s.Src, s.Dst)
			}
		} else if spec.CrossNode(s.Src, s.Dst) {
			t.Errorf("halo span %q (%d -> %d) crosses nodes without the nic tag", s.Name, s.Src, s.Dst)
		}
	}
	for name, r := range rounds {
		if got, want := haloCount[name], r*perRound; got != want {
			t.Errorf("halo spans for %q = %d, ExchangeTransfers predicts %d (%d rounds x %d)",
				name, got, want, r, perRound)
		}
		if got, want := nicCount[name], r*interPerRound; got != want {
			t.Errorf("nic-tagged halo spans for %q = %d, ExchangeTransfers predicts %d (%d rounds x %d)",
				name, got, want, r, interPerRound)
		}
	}

	// The runtime's own halo-exchange events report the inter-node count
	// the comm manager actually scheduled; summed, it must equal the
	// nic-tagged span population.
	interRe := regexp.MustCompile(`\((\d+) inter-node\)`)
	eventInter := 0
	for _, ev := range res.Report.Events {
		if ev.Kind != "halo-exchange" {
			continue
		}
		mm := interRe.FindStringSubmatch(ev.Detail)
		if mm == nil {
			t.Fatalf("multi-node halo-exchange event without inter-node count: %s", ev.Detail)
		}
		n, _ := strconv.Atoi(mm[1])
		eventInter += n
	}
	wantInter := 0
	for _, n := range nicCount {
		wantInter += n
	}
	if eventInter != wantInter {
		t.Errorf("halo-exchange events report %d inter-node transfers, trace has %d nic-tagged halo spans",
			eventInter, wantInter)
	}
}
