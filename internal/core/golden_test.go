package core

import (
	"os"
	"path/filepath"
	"testing"

	"accmulti/internal/ir"
)

// Golden expectations for every program shipped in examples/testdata:
// the Table II-style static statistics and the single-GPU device
// footprint at a fixed binding. A new example must add a row here; a
// translator change that shifts any of these numbers must be explained
// in the diff that updates them.
var goldenPrograms = map[string]struct {
	scalars map[string]float64
	stats   Stats
	devMem  int64
}{
	"saxpy.c": {
		scalars: map[string]float64{"n": 1000, "a": 2.0},
		stats:   Stats{ParallelLoops: 1, ArraysInLoops: 2, LocalAccessArrays: 2, ReductionArrays: 0},
		devMem:  8000, // x + y, 1000 float32 each
	},
	"dotprod.c": {
		scalars: map[string]float64{"n": 1000},
		stats:   Stats{ParallelLoops: 1, ArraysInLoops: 2, LocalAccessArrays: 2, ReductionArrays: 0},
		devMem:  8000, // x + y, 1000 float32 each
	},
	"histogram.c": {
		scalars: map[string]float64{"n": 1000, "k": 16},
		stats:   Stats{ParallelLoops: 1, ArraysInLoops: 2, LocalAccessArrays: 0, ReductionArrays: 1},
		devMem:  4064, // data (1000 int32) + hist (16 int32)
	},
}

func TestGoldenStatsAndMemory(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "testdata")
	files, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example programs found in %s (%v)", dir, err)
	}
	covered := map[string]bool{}
	for _, path := range files {
		name := filepath.Base(path)
		covered[name] = true
		want, ok := goldenPrograms[name]
		if !ok {
			t.Errorf("%s has no golden entry; add one to goldenPrograms", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			prog, err := Compile(string(src))
			if err != nil {
				t.Fatal(err)
			}
			if got := prog.Stats(); got != want.stats {
				t.Errorf("Stats() = %+v, want %+v", got, want.stats)
			}
			b := ir.NewBindings()
			for k, v := range want.scalars {
				b.SetScalar(k, v)
			}
			mem, err := DeviceMemoryUsage(prog, b)
			if err != nil {
				t.Fatal(err)
			}
			if mem != want.devMem {
				t.Errorf("DeviceMemoryUsage = %d, want %d", mem, want.devMem)
			}
		})
	}
	for name := range goldenPrograms {
		if !covered[name] {
			t.Errorf("golden entry %s has no matching file in %s", name, dir)
		}
	}
}
