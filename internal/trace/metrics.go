package trace

import (
	"fmt"
	"io"
	"sort"
)

// Metrics is a deterministic aggregate registry: named counters plus
// fixed-bucket histograms. All mutation happens on the host strand
// (span commit or explicit Inc/Observe from runtime host code), so no
// locking; the JSON dump iterates sorted names so equal registries
// serialize byte-identically.
type Metrics struct {
	counters map[string]int64
	hists    map[string]*Histogram
}

// Histogram counts observations into fixed buckets: Counts[i] holds
// values v with v <= Bounds[i] (first matching bound), and the last
// slot holds the overflow. Bounds are fixed by the first Observe.
type Histogram struct {
	Bounds []int64
	Counts []int64
	Sum    int64
	N      int64
}

// BytesBuckets buckets transfer sizes (1KiB..256MiB, powers of 16).
var BytesBuckets = []int64{1 << 10, 1 << 14, 1 << 18, 1 << 22, 1 << 26, 1 << 28}

// DurationBucketsUS buckets simulated durations in microseconds.
var DurationBucketsUS = []int64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{counters: make(map[string]int64), hists: make(map[string]*Histogram)}
}

// Inc adds delta to the named counter.
func (m *Metrics) Inc(name string, delta int64) { m.counters[name] += delta }

// Counter returns the named counter's value (0 if never incremented).
func (m *Metrics) Counter(name string) int64 { return m.counters[name] }

// Hist returns the named histogram, or nil if never observed.
func (m *Metrics) Hist(name string) *Histogram { return m.hists[name] }

// Observe records v into the named histogram, creating it with the
// given bounds on first use (later calls keep the original bounds).
func (m *Metrics) Observe(name string, bounds []int64, v int64) {
	h := m.hists[name]
	if h == nil {
		h = &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
		m.hists[name] = h
	}
	i := sort.Search(len(h.Bounds), func(i int) bool { return v <= h.Bounds[i] })
	h.Counts[i]++
	h.Sum += v
	h.N++
}

// WriteJSON dumps the registry as deterministic (sorted-key, fixed
// layout) JSON: {"counters":{...},"histograms":{name:{"bounds":[...],
// "counts":[...],"sum":S,"n":N}}}.
func (m *Metrics) WriteJSON(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("{\n  \"counters\": {")
	names := make([]string, 0, len(m.counters))
	for k := range m.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    %s: %d", quote(k), m.counters[k])
	}
	if len(names) > 0 {
		bw.printf("\n  ")
	}
	bw.printf("},\n  \"histograms\": {")
	names = names[:0]
	for k := range m.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	for i, k := range names {
		h := m.hists[k]
		if i > 0 {
			bw.printf(",")
		}
		bw.printf("\n    %s: {\"bounds\": %s, \"counts\": %s, \"sum\": %d, \"n\": %d}",
			quote(k), intList(h.Bounds), intList(h.Counts), h.Sum, h.N)
	}
	if len(names) > 0 {
		bw.printf("\n  ")
	}
	bw.printf("}\n}\n")
	return bw.err
}

func intList(vs []int64) string {
	s := "["
	for i, v := range vs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%d", v)
	}
	return s + "]"
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
