package trace

import (
	"bytes"
	"encoding/json"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func sampleTracer() *Tracer {
	t := New()
	t.EnsureLanes(2)
	t.Emit(Span{Kind: KindPlanCache, Lane: LaneHost, Begin: 0, End: 0, Name: "k0", Detail: "miss"})
	t.Emit(Span{Kind: KindH2D, Lane: 0, Begin: 0, End: 10 * time.Microsecond, Name: "a", Bytes: 4096, Lo: 0, Hi: 1023, Src: -1, Dst: 0})
	t.Emit(Span{Kind: KindH2D, Lane: 1, Begin: 0, End: 10 * time.Microsecond, Name: "a", Bytes: 4096, Lo: 1024, Hi: 2047, Src: -1, Dst: 1})
	t.LaneEmit(1, Span{Kind: KindKernel, Lane: 1, Begin: 10 * time.Microsecond, End: 30 * time.Microsecond, Name: "k0"})
	t.LaneEmit(0, Span{Kind: KindSpecKernel, Lane: 0, Begin: 10 * time.Microsecond, End: 25 * time.Microsecond, Name: "k0"})
	t.LaneEmit(0, Span{Kind: KindDirtyMark, Lane: 0, Begin: 25 * time.Microsecond, End: 25 * time.Microsecond, Name: "a"})
	t.FlushLanes()
	t.Emit(Span{Kind: KindHalo, Lane: LaneComms, Begin: 30 * time.Microsecond, End: 31 * time.Microsecond, Name: "a", Bytes: 8, Lo: 1023, Hi: 1024, Src: 0, Dst: 1})
	t.Emit(Span{Kind: KindGather, Lane: 0, Begin: 31 * time.Microsecond, End: 40 * time.Microsecond, Name: "a", Bytes: 8192, Lo: 0, Hi: 2047, Src: 0, Dst: -1})
	return t
}

// FlushLanes must commit lane buffers in lane order regardless of
// emission interleaving, so lane 0's spans precede lane 1's.
func TestFlushLanesOrder(t *testing.T) {
	tr := sampleTracer()
	spans := tr.Spans()
	var kernels []Span
	for _, s := range spans {
		if s.Kind == KindKernel || s.Kind == KindSpecKernel || s.Kind == KindDirtyMark {
			kernels = append(kernels, s)
		}
	}
	if len(kernels) != 3 {
		t.Fatalf("got %d kernel-ish spans, want 3", len(kernels))
	}
	if kernels[0].Lane != 0 || kernels[1].Lane != 0 || kernels[2].Lane != 1 {
		t.Errorf("lane flush order wrong: lanes %d,%d,%d want 0,0,1",
			kernels[0].Lane, kernels[1].Lane, kernels[2].Lane)
	}
	if kernels[0].Kind != KindSpecKernel || kernels[1].Kind != KindDirtyMark {
		t.Errorf("within-lane emission order not preserved: %v, %v", kernels[0].Kind, kernels[1].Kind)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	tr := sampleTracer()
	var buf1, buf2 bytes.Buffer
	if err := WriteChrome(&buf1, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteChrome is not byte-stable across calls")
	}
	var doc map[string]any
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("output lacks traceEvents")
	}
	got, err := ParseChrome(buf1.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffSpans(got, tr.Spans()); d != "" {
		t.Fatalf("round trip diverges:\n%s", d)
	}
}

func TestDiffSpansReportsFirstDivergence(t *testing.T) {
	a := sampleTracer().Spans()
	b := append([]Span(nil), a...)
	b[2].Bytes = 1
	d := DiffSpans(a, b)
	if !strings.Contains(d, "span 2 diverges") {
		t.Errorf("diff = %q, want first divergence at span 2", d)
	}
	if d := DiffSpans(a, a[:len(a)-1]); !strings.Contains(d, "span count differs") {
		t.Errorf("diff = %q, want count mismatch", d)
	}
	if d := DiffSpans(a, a); d != "" {
		t.Errorf("diff of identical streams = %q, want empty", d)
	}
}

func TestCheckWellFormed(t *testing.T) {
	if err := CheckWellFormed(sampleTracer().Spans()); err != nil {
		t.Errorf("sample trace not well-formed: %v", err)
	}
	bad := []Span{{Kind: KindKernel, Lane: 0, Begin: 10, End: 5}}
	if err := CheckWellFormed(bad); err == nil {
		t.Error("negative duration not rejected")
	}
	overlap := []Span{
		{Kind: KindKernel, Lane: 0, Begin: 0, End: 10},
		{Kind: KindKernel, Lane: 0, Begin: 5, End: 15},
	}
	if err := CheckWellFormed(overlap); err == nil {
		t.Error("non-nesting overlap not rejected")
	}
	// Same window on different lanes is fine.
	parallel := []Span{
		{Kind: KindKernel, Lane: 0, Begin: 0, End: 10},
		{Kind: KindKernel, Lane: 1, Begin: 0, End: 10},
	}
	if err := CheckWellFormed(parallel); err != nil {
		t.Errorf("parallel lanes rejected: %v", err)
	}
	// An instant on its parent's end stamp nests (dirty-mark case).
	instant := []Span{
		{Kind: KindKernel, Lane: 0, Begin: 0, End: 10},
		{Kind: KindDirtyMark, Lane: 0, Begin: 10, End: 10},
	}
	if err := CheckWellFormed(instant); err != nil {
		t.Errorf("end-stamp instant rejected: %v", err)
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	m := NewMetrics()
	m.Inc("b.second", 2)
	m.Inc("a.first", 1)
	m.Observe("sizes", BytesBuckets, 100)
	m.Observe("sizes", BytesBuckets, 1<<20)
	m.Observe("sizes", BytesBuckets, 1<<30) // overflow bucket

	var buf1, buf2 bytes.Buffer
	if err := m.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteJSON is not byte-stable")
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Bounds []int64 `json:"bounds"`
			Counts []int64 `json:"counts"`
			Sum    int64   `json:"sum"`
			N      int64   `json:"n"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf1.Bytes(), &doc); err != nil {
		t.Fatalf("metrics output not valid JSON: %v", err)
	}
	if doc.Counters["a.first"] != 1 || doc.Counters["b.second"] != 2 {
		t.Errorf("counters wrong: %v", doc.Counters)
	}
	h := doc.Histograms["sizes"]
	if h.N != 3 || h.Counts[len(h.Counts)-1] != 1 {
		t.Errorf("histogram wrong: %+v", h)
	}
	if strings.Index(buf1.String(), "a.first") > strings.Index(buf1.String(), "b.second") {
		t.Error("counters not sorted by name")
	}
}

func TestBeginProcessGroupsSpans(t *testing.T) {
	tr := New()
	tr.Emit(Span{Kind: KindAlloc, Lane: LaneHost})
	p := tr.BeginProcess("bench/saxpy")
	tr.Emit(Span{Kind: KindAlloc, Lane: LaneHost})
	spans := tr.Spans()
	if spans[0].Proc != 0 || spans[1].Proc != p {
		t.Errorf("procs = %d,%d want 0,%d", spans[0].Proc, spans[1].Proc, p)
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"bench/saxpy"`) {
		t.Error("process name metadata missing")
	}
}

// TestLaneFlushOrderUnderConcurrency is the regression test for the
// event-interleaving bug: spans emitted by per-GPU goroutines used to
// commit in scheduler order. With goroutine-private lane buffers and
// an ordered FlushLanes, the committed stream must be bit-identical no
// matter how the goroutines interleave. Run under -race it also pins
// the one-writer-per-lane discipline.
func TestLaneFlushOrderUnderConcurrency(t *testing.T) {
	const lanes, rounds, perLane = 6, 40, 8
	var want []Span
	for rep := 0; rep < rounds; rep++ {
		tr := New()
		tr.EnsureLanes(lanes)
		for step := 0; step < 3; step++ {
			var wg sync.WaitGroup
			for g := 0; g < lanes; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					// Jitter the schedule so interleavings differ run to run.
					if g%2 == rep%2 {
						runtime.Gosched()
					}
					for i := 0; i < perLane; i++ {
						tr.LaneEmit(g, Span{
							Kind:  KindKernel,
							Begin: time.Duration(step) * time.Millisecond,
							End:   time.Duration(step)*time.Millisecond + time.Duration(i),
							Name:  "k",
							Lo:    int64(g),
							Hi:    int64(i),
						})
					}
				}(g)
			}
			wg.Wait()
			tr.FlushLanes()
		}
		got := tr.Spans()
		if rep == 0 {
			want = append([]Span(nil), got...)
			continue
		}
		if diff := DiffSpans(got, want); diff != "" {
			t.Fatalf("rep %d: committed order diverged: %s", rep, diff)
		}
	}
	// Sanity: lanes commit in lane order within each flush window.
	for i := 1; i < lanes*perLane; i++ {
		if want[i].Lo < want[i-1].Lo {
			t.Fatalf("span %d: lane %d committed after lane %d", i, want[i].Lo, want[i-1].Lo)
		}
	}
}
