// Package trace is the runtime's structured tracing and metrics layer.
// The runtime emits spans — begin/end stamped with the *simulated*
// clock — for every observable decision of its three engines (data
// loader, communication manager, kernel launcher) plus the PR-1..PR-4
// subsystems layered on them (degradation ladder, plan cache,
// specialized executors). Because every timestamp derives from the
// deterministic virtual-time accounting, a program's trace is a pure
// function of (source, bindings, machine, options): bit-identical
// across runs, host parallelism on or off, and GOMAXPROCS settings.
// That makes traces goldenable, and the golden/invariance tests under
// internal/core and internal/rt lean on it.
//
// Two sinks consume the span stream:
//
//   - WriteChrome renders Chrome trace-event JSON, loadable in a
//     Chromium browser's about://tracing (or https://ui.perfetto.dev):
//     one lane per GPU plus host and comms lanes.
//   - Metrics aggregates counters and fixed-bucket histograms (bytes
//     moved per placement policy, spec hits/fallbacks, reload skips,
//     fault retries), dumped as deterministic JSON.
//
// Concurrency contract: Emit may only be called from the runtime's
// host strand. Per-GPU goroutines use LaneEmit(g, …) — each lane
// buffer has exactly one writer during a phase — and the host strand
// commits the buffers in lane order with FlushLanes at the phase
// barrier. The committed span order is therefore deterministic no
// matter how the goroutines interleave.
package trace

import "time"

// Kind classifies a span.
type Kind uint8

const (
	// KindAlloc is a device storage allocation (instant).
	KindAlloc Kind = iota
	// KindH2D is a host→device content load.
	KindH2D
	// KindGather is a device→host gather (D2H).
	KindGather
	// KindD2D is a GPU-GPU transfer that is not a halo push: dirty
	// chunks between replicas, miss-record routing, reduction trees.
	KindD2D
	// KindHalo is a halo-overlap push of a distributed written array.
	KindHalo
	// KindKernel is one GPU's share of a launch on the interpreter.
	KindKernel
	// KindSpecKernel is one GPU's share on the specialized executor.
	KindSpecKernel
	// KindDirtyMark is the dirty-bit marking window of one (array, GPU)
	// inside a kernel span (instant, at the kernel span's end).
	KindDirtyMark
	// KindDegrade is a fault-handling action: transfer retry/giveup,
	// OOM fallback/giveup (instant, host lane).
	KindDegrade
	// KindPlanCache is a launch-plan cache consultation (instant).
	KindPlanCache
	kindCount
)

var kindNames = [kindCount]string{
	"alloc", "h2d", "gather", "d2d", "halo-exchange",
	"kernel", "spec-kernel", "dirty-mark", "degrade", "plan-cache",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "?"
}

// KindFromString inverts Kind.String (ok=false for unknown names).
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// IsTransfer reports whether the kind is a priced bus transfer.
func (k Kind) IsTransfer() bool {
	switch k {
	case KindH2D, KindGather, KindD2D, KindHalo:
		return true
	}
	return false
}

// Lanes. GPU g is lane g; the host strand and the communication
// manager get pseudo-lanes below zero.
const (
	// LaneHost carries host-strand spans (degrade, plan-cache).
	LaneHost = -1
	// LaneComms carries GPU-GPU transfer spans (single-node machines).
	LaneComms = -2
	// laneNICBase is LaneNIC(0); lanes at or below it belong to the
	// per-node NIC family of multi-node machines.
	laneNICBase = -3
)

// LaneNIC returns the comms lane of node n's network interface. On a
// multi-node machine every transfer span lands on the NIC lane of its
// destination's node — cross-node traffic tagged "nic", intra-node
// peer traffic tagged "p2p" — so the viewer shows one comms row per
// node. Single-node machines keep the plain comms lane.
func LaneNIC(node int) int { return laneNICBase - node }

// NICLaneNode inverts LaneNIC (ok=false for non-NIC lanes).
func NICLaneNode(lane int) (int, bool) {
	if lane <= laneNICBase {
		return laneNICBase - lane, true
	}
	return 0, false
}

// Span is one traced operation. Begin and End are simulated-clock
// stamps (End == Begin for instants). Lo..Hi is the inclusive logical
// element range the operation covers (Hi < Lo when not meaningful);
// Src/Dst are the transfer endpoints of transfer-kind spans.
type Span struct {
	Kind       Kind
	Lane       int
	Proc       int // trace process (one per benchmark run); 0 otherwise
	Begin, End time.Duration
	Name       string // kernel or array name; event kind for degrades
	Bytes      int64
	Lo, Hi     int64
	Src, Dst   int
	Detail     string
}

// Duration is the span's extent (0 for instants).
func (s Span) Duration() time.Duration { return s.End - s.Begin }

// Tracer collects spans and aggregates metrics for one or more runs.
type Tracer struct {
	mets  *Metrics
	spans []Span
	lanes [][]Span
	procs []string
	pid   int
}

// New returns an empty tracer with one unnamed trace process.
func New() *Tracer {
	return &Tracer{mets: NewMetrics(), procs: []string{""}}
}

// Metrics returns the tracer's aggregate registry.
func (t *Tracer) Metrics() *Metrics { return t.mets }

// Spans returns the committed spans in commit order. The slice is
// owned by the tracer; callers must not mutate it.
func (t *Tracer) Spans() []Span { return t.spans }

// Processes returns the registered trace-process names (index = Proc).
func (t *Tracer) Processes() []string { return t.procs }

// BeginProcess groups subsequent spans under a new named trace process
// — one per measured configuration when a benchmark sweep shares a
// tracer — and returns its id. Host strand only.
func (t *Tracer) BeginProcess(name string) int {
	t.procs = append(t.procs, name)
	t.pid = len(t.procs) - 1
	return t.pid
}

// Emit commits one span from the host strand.
func (t *Tracer) Emit(s Span) { t.commit(s) }

// EnsureLanes sizes the per-GPU lane buffers. Host strand only.
func (t *Tracer) EnsureLanes(n int) {
	for len(t.lanes) < n {
		t.lanes = append(t.lanes, nil)
	}
}

// LaneEmit buffers a span from GPU goroutine lane (the lane's single
// writer during a phase). Nothing is committed until FlushLanes.
func (t *Tracer) LaneEmit(lane int, s Span) {
	t.lanes[lane] = append(t.lanes[lane], s)
}

// FlushLanes commits the buffered lane spans in (lane, emission) order
// — the deterministic ordered flush all phase-parallel emission routes
// through. Host strand only, after the phase barrier.
func (t *Tracer) FlushLanes() {
	for lane := range t.lanes {
		for _, s := range t.lanes[lane] {
			t.commit(s)
		}
		t.lanes[lane] = t.lanes[lane][:0]
	}
}

func (t *Tracer) commit(s Span) {
	s.Proc = t.pid
	t.spans = append(t.spans, s)
	t.mets.Inc("spans."+s.Kind.String(), 1)
	switch s.Kind {
	case KindKernel, KindSpecKernel:
		t.mets.Observe("kernel.duration_us", DurationBucketsUS, int64(s.Duration()/time.Microsecond))
	default:
		if s.Kind.IsTransfer() {
			t.mets.Observe("transfer.bytes", BytesBuckets, s.Bytes)
		}
	}
}
