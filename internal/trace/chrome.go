package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Chrome trace-event output. The format is the "JSON Object Format"
// understood by about://tracing and ui.perfetto.dev: an object with a
// traceEvents array of "M" (metadata) and "X" (complete) events.
// Every byte of the output is a pure function of the span stream — no
// maps are iterated unsorted, timestamps are printed with a fixed
// format — so equal traces serialize identically and the files can be
// committed as goldens.
//
// Lane → Chrome thread id mapping: host = 0, comms = 1, GPU g = 2+g,
// so the viewer shows host and comms rows above one row per GPU. The
// per-node NIC lanes of multi-node machines map to tids from 1000 up
// (NIC n = 1000+n), safely past the at-most-16 GPU tids, so they sort
// below the GPU rows.

const (
	tidHost  = 0
	tidComms = 1
	tidGPU0  = 2
	tidNIC0  = 1000
)

func laneTID(lane int) int {
	switch {
	case lane == LaneHost:
		return tidHost
	case lane == LaneComms:
		return tidComms
	case lane <= laneNICBase:
		return tidNIC0 + (laneNICBase - lane)
	default:
		return tidGPU0 + lane
	}
}

func tidLane(tid int) int {
	switch {
	case tid == tidHost:
		return LaneHost
	case tid == tidComms:
		return LaneComms
	case tid >= tidNIC0:
		return laneNICBase - (tid - tidNIC0)
	default:
		return tid - tidGPU0
	}
}

func laneName(lane int) string {
	switch {
	case lane == LaneHost:
		return "host"
	case lane == LaneComms:
		return "comms"
	case lane <= laneNICBase:
		return fmt.Sprintf("nic %d", laneNICBase-lane)
	default:
		return fmt.Sprintf("gpu %d", lane)
	}
}

func quote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}

// usec renders a nanosecond stamp as Chrome's microsecond field with
// fixed millinanosecond precision ("12.345"), keeping full fidelity
// and byte stability.
func usec(d time.Duration) string {
	ns := int64(d)
	return fmt.Sprintf("%d.%03d", ns/1000, ns%1000)
}

// WriteChrome renders the tracer's committed spans as Chrome
// trace-event JSON.
func WriteChrome(w io.Writer, t *Tracer) error {
	bw := &errWriter{w: w}
	bw.printf("{\"traceEvents\": [\n")
	first := true
	event := func(format string, args ...any) {
		if !first {
			bw.printf(",\n")
		}
		first = false
		bw.printf(format, args...)
	}

	// Metadata: process names, then thread names for every (proc,
	// lane) pair that actually carries spans, in deterministic order.
	type procLane struct{ proc, tid int }
	seen := make(map[procLane]bool)
	var pls []procLane
	for _, s := range t.spans {
		pl := procLane{s.Proc, laneTID(s.Lane)}
		if !seen[pl] {
			seen[pl] = true
			pls = append(pls, pl)
		}
	}
	sort.Slice(pls, func(i, j int) bool {
		if pls[i].proc != pls[j].proc {
			return pls[i].proc < pls[j].proc
		}
		return pls[i].tid < pls[j].tid
	})
	lastProc := -1
	for _, pl := range pls {
		if pl.proc != lastProc {
			lastProc = pl.proc
			name := t.procs[pl.proc]
			if name == "" {
				name = "accmulti"
			}
			event("  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": 0, \"args\": {\"name\": %s}}",
				pl.proc, quote(name))
		}
		event("  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": %d, \"tid\": %d, \"args\": {\"name\": %s}}",
			pl.proc, pl.tid, quote(laneName(tidLane(pl.tid))))
	}

	for _, s := range t.spans {
		name := s.Name
		if name == "" {
			name = s.Kind.String()
		}
		event("  {\"name\": %s, \"cat\": %s, \"ph\": \"X\", \"pid\": %d, \"tid\": %d, \"ts\": %s, \"dur\": %s, "+
			"\"args\": {\"kind\": %s, \"bytes\": %d, \"lo\": %d, \"hi\": %d, \"src\": %d, \"dst\": %d, "+
			"\"begin_ns\": %d, \"end_ns\": %d, \"detail\": %s}}",
			quote(name), quote(s.Kind.String()), s.Proc, laneTID(s.Lane), usec(s.Begin), usec(s.End-s.Begin),
			quote(s.Kind.String()), s.Bytes, s.Lo, s.Hi, s.Src, s.Dst,
			int64(s.Begin), int64(s.End), quote(s.Detail))
	}
	bw.printf("\n]}\n")
	return bw.err
}

type chromeEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args struct {
		Kind    string `json:"kind"`
		Bytes   int64  `json:"bytes"`
		Lo      int64  `json:"lo"`
		Hi      int64  `json:"hi"`
		Src     int    `json:"src"`
		Dst     int    `json:"dst"`
		BeginNS int64  `json:"begin_ns"`
		EndNS   int64  `json:"end_ns"`
		Detail  string `json:"detail"`
	} `json:"args"`
}

// ParseChrome reconstructs the span stream from WriteChrome output
// (metadata events are skipped). Used for structural golden diffs.
func ParseChrome(data []byte) ([]Span, error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: parse chrome JSON: %w", err)
	}
	var spans []Span
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		kind, ok := KindFromString(ev.Args.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: event %d: unknown kind %q", i, ev.Args.Kind)
		}
		name := ev.Name
		if name == kind.String() {
			name = "" // WriteChrome substituted the kind for an empty name
		}
		spans = append(spans, Span{
			Kind:  kind,
			Lane:  tidLane(ev.Tid),
			Proc:  ev.Pid,
			Begin: time.Duration(ev.Args.BeginNS),
			End:   time.Duration(ev.Args.EndNS),
			Name:  name, Bytes: ev.Args.Bytes,
			Lo: ev.Args.Lo, Hi: ev.Args.Hi,
			Src: ev.Args.Src, Dst: ev.Args.Dst,
			Detail: ev.Args.Detail,
		})
	}
	return spans, nil
}

func (s Span) describe() string {
	return fmt.Sprintf("%s %q lane=%d proc=%d [%v..%v] bytes=%d range=[%d..%d] %d->%d detail=%q",
		s.Kind, s.Name, s.Lane, s.Proc, s.Begin, s.End, s.Bytes, s.Lo, s.Hi, s.Src, s.Dst, s.Detail)
}

// DiffSpans compares two span streams structurally and returns a
// description of the first divergence ("" when identical).
func DiffSpans(got, want []Span) string {
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			return fmt.Sprintf("span %d diverges:\n  got:  %s\n  want: %s", i, got[i].describe(), want[i].describe())
		}
	}
	if len(got) != len(want) {
		var extra Span
		side := "got"
		if len(got) > len(want) {
			extra = got[n]
		} else {
			extra = want[n]
			side = "want"
		}
		return fmt.Sprintf("span count differs: got %d, want %d; first extra (%s): %s",
			len(got), len(want), side, extra.describe())
	}
	return ""
}

// CheckWellFormed validates the structural invariants of a span
// stream: non-negative stamps and durations, and strict nesting per
// (process, lane) — a span either nests inside the one on top of its
// lane's stack (closed-interval containment, so an instant sitting on
// its parent's end stamp still nests) or begins at/after its end.
func CheckWellFormed(spans []Span) error {
	type key struct{ proc, lane int }
	stacks := make(map[key][]Span)
	for i, s := range spans {
		if s.Begin < 0 || s.End < s.Begin {
			return fmt.Errorf("span %d has bad stamps: %s", i, s.describe())
		}
		k := key{s.Proc, s.Lane}
		stack := stacks[k]
		for len(stack) > 0 {
			top := stack[len(stack)-1]
			if top.Begin <= s.Begin && s.End <= top.End {
				break // nests inside top
			}
			if s.Begin >= top.End {
				stack = stack[:len(stack)-1]
				continue
			}
			return fmt.Errorf("span %d overlaps its lane predecessor without nesting:\n  span: %s\n  top:  %s",
				i, s.describe(), top.describe())
		}
		stacks[k] = append(stack, s)
	}
	return nil
}
