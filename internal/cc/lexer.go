package cc

import (
	"strings"
	"unicode"
)

// lexer converts source text into tokens, keeping `#pragma` lines whole.
type lexer struct {
	src       string
	pos       int
	line      int
	lineStart int // byte offset of the current line's first character
	toks      []Token
}

// col returns the 1-based column of byte offset pos on the current line.
func (lx *lexer) col(pos int) int { return pos - lx.lineStart + 1 }

// Lex tokenizes the source. It is exported for tests and tooling; the
// parser calls it internally.
func Lex(src string) ([]Token, error) {
	lx := &lexer{src: src, line: 1}
	if err := lx.run(); err != nil {
		return nil, err
	}
	return lx.toks, nil
}

// two- and three-character punctuation, longest match first.
var punct2 = []string{
	"<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
	"++", "--", "<<", ">>",
}

func (lx *lexer) run() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == '\n':
			lx.line++
			lx.pos++
			lx.lineStart = lx.pos
		case c == ' ' || c == '\t' || c == '\r':
			lx.pos++
		case c == '/' && lx.peek(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.peek(1) == '*':
			if err := lx.blockComment(); err != nil {
				return err
			}
		case c == '#':
			if err := lx.pragma(); err != nil {
				return err
			}
		case isDigit(rune(c)) || (c == '.' && isDigit(rune(lx.peek(1)))):
			lx.number()
		case isIdentStart(rune(c)):
			lx.ident()
		default:
			if !lx.punct() {
				return errf(lx.line, "unexpected character %q", c)
			}
		}
	}
	lx.toks = append(lx.toks, Token{Kind: TokEOF, Line: lx.line, Col: lx.col(lx.pos)})
	return nil
}

func (lx *lexer) peek(ahead int) byte {
	if lx.pos+ahead < len(lx.src) {
		return lx.src[lx.pos+ahead]
	}
	return 0
}

func (lx *lexer) blockComment() error {
	start := lx.line
	lx.pos += 2
	for lx.pos < len(lx.src) {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.lineStart = lx.pos + 1
		}
		if lx.src[lx.pos] == '*' && lx.peek(1) == '/' {
			lx.pos += 2
			return nil
		}
		lx.pos++
	}
	return errf(start, "unterminated block comment")
}

func (lx *lexer) pragma() error {
	start := lx.pos
	line := lx.line
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
		lx.pos++
	}
	text := lx.src[start:lx.pos]
	rest, ok := strings.CutPrefix(text, "#")
	if !ok {
		return errf(line, "malformed preprocessor line")
	}
	off := 1 // past '#'
	trimmed := strings.TrimLeft(rest, " \t\r")
	off += len(rest) - len(trimmed)
	body, ok := strings.CutPrefix(trimmed, "pragma")
	if !ok {
		return errf(line, "unsupported preprocessor directive %q (only #pragma is accepted)", text)
	}
	off += len("pragma")
	bodyTrim := strings.TrimLeft(body, " \t\r")
	off += len(body) - len(bodyTrim)
	bodyTrim = strings.TrimRight(bodyTrim, " \t\r")
	lx.toks = append(lx.toks, Token{Kind: TokPragma, Text: bodyTrim, Line: line, Col: lx.col(start) + off})
	return nil
}

func (lx *lexer) number() {
	start := lx.pos
	kind := TokInt
	for lx.pos < len(lx.src) && isDigit(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		kind = TokFloat
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(rune(lx.src[lx.pos])) {
			lx.pos++
		}
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if lx.pos < len(lx.src) && isDigit(rune(lx.src[lx.pos])) {
			kind = TokFloat
			for lx.pos < len(lx.src) && isDigit(rune(lx.src[lx.pos])) {
				lx.pos++
			}
		} else {
			lx.pos = save // not an exponent; leave 'e' for the ident lexer
		}
	}
	text := lx.src[start:lx.pos]
	// C float suffix.
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'f' || lx.src[lx.pos] == 'F') {
		kind = TokFloat
		lx.pos++
	}
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Line: lx.line, Col: lx.col(start)})
}

func (lx *lexer) ident() {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentRune(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	lx.toks = append(lx.toks, Token{Kind: TokIdent, Text: lx.src[start:lx.pos], Line: lx.line, Col: lx.col(start)})
}

func (lx *lexer) punct() bool {
	rest := lx.src[lx.pos:]
	for _, p := range punct2 {
		if strings.HasPrefix(rest, p) {
			lx.toks = append(lx.toks, Token{Kind: TokPunct, Text: p, Line: lx.line, Col: lx.col(lx.pos)})
			lx.pos += len(p)
			return true
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '[', ']', '{', '}', ';', ',', '?', ':':
		lx.toks = append(lx.toks, Token{Kind: TokPunct, Text: rest[:1], Line: lx.line, Col: lx.col(lx.pos)})
		lx.pos++
		return true
	}
	return false
}

func isDigit(r rune) bool      { return r >= '0' && r <= '9' }
func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentRune(r rune) bool  { return isIdentStart(r) || unicode.IsDigit(r) }
