// Package cc is a from-scratch frontend for the C subset used by the
// OpenACC applications in Komoda et al. (ICPP 2013): global array and
// scalar declarations bound by the host, one void main() function,
// for/while/if statements, arithmetic/logical expressions, and
// `#pragma acc` directives (parsed by the acc package and attached to
// the statements they govern). It plays the role the ROSE compiler
// infrastructure plays in the paper's prototype.
package cc

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

const (
	// TokEOF ends the stream.
	TokEOF TokKind = iota
	// TokIdent is an identifier or keyword.
	TokIdent
	// TokInt is an integer literal.
	TokInt
	// TokFloat is a floating-point literal.
	TokFloat
	// TokPunct is an operator or punctuation token.
	TokPunct
	// TokPragma is a whole `#pragma ...` line; Text holds everything
	// after "#pragma".
	TokPragma
)

// Token is one lexical token with its source line and column
// (1-based). For TokPragma the column is where the directive body
// starts (after "#pragma"), so clause positions inside the directive
// can be reported precisely.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of file"
	case TokPragma:
		return fmt.Sprintf("#pragma%s", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// keywords of the accepted C subset.
var keywords = map[string]bool{
	"int": true, "float": true, "double": true, "void": true,
	"if": true, "else": true, "for": true, "while": true,
	"break": true, "continue": true,
	"extern": true, "return": true, "const": true,
}

// IsKeyword reports whether the name is reserved.
func IsKeyword(name string) bool { return keywords[name] }

// Error is a positioned frontend error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("cc: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}
