package cc

import (
	"fmt"
	"strconv"

	"accmulti/internal/acc"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// ParseProgram lexes, parses and analyzes a translation unit.
func ParseProgram(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseUnit()
	if err != nil {
		return nil, err
	}
	prog.Source = src
	if err := analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

// ParseExprString parses a standalone expression (used for directive
// arguments such as localaccess bounds) and resolves it against the
// given scope.
func ParseExprString(text string, line int, scope map[string]*VarDecl) (Expr, error) {
	toks, err := Lex(text)
	if err != nil {
		return nil, errf(line, "in directive expression %q: %v", text, err)
	}
	// Rebase token lines onto the directive's line. Columns are
	// relative to the directive text, not the source line, so drop
	// them rather than report misleading positions.
	for i := range toks {
		toks[i].Line = line
		toks[i].Col = 0
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("in directive expression %q: %w", text, err)
	}
	if p.cur().Kind != TokEOF {
		return nil, errf(line, "in directive expression %q: trailing tokens after expression", text)
	}
	sa := &sema{scope: scope, noDecl: true}
	if err := sa.expr(e); err != nil {
		return nil, fmt.Errorf("in directive expression %q: %w", text, err)
	}
	return e, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(text string) bool {
	if p.cur().Kind == TokPunct && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptIdent(name string) bool {
	if p.cur().Kind == TokIdent && p.cur().Text == name {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errf(p.cur().Line, "expected %q, found %s", text, p.cur())
	}
	return nil
}

func (p *parser) typeName() (ElemType, bool) {
	if p.cur().Kind != TokIdent {
		return 0, false
	}
	switch p.cur().Text {
	case "int":
		return TInt, true
	case "float":
		return TFloat, true
	case "double":
		return TDouble, true
	}
	return 0, false
}

// parseUnit parses globals followed by void main().
func (p *parser) parseUnit() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		// Skip storage qualifiers on globals.
		for p.acceptIdent("extern") || p.acceptIdent("const") {
		}
		if p.acceptIdent("void") {
			fn, err := p.parseFunc()
			if err != nil {
				return nil, err
			}
			if prog.Main != nil {
				return nil, errf(fn.Line, "multiple functions: only one void main() is supported")
			}
			prog.Main = fn
			continue
		}
		if t, ok := p.typeName(); ok {
			p.pos++
			decls, err := p.parseDeclarators(t, true)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, decls...)
			continue
		}
		return nil, errf(p.cur().Line, "expected declaration or void main(), found %s", p.cur())
	}
	if prog.Main == nil {
		return nil, errf(1, "program has no void main()")
	}
	return prog, nil
}

func (p *parser) parseFunc() (*FuncDecl, error) {
	name := p.cur()
	if name.Kind != TokIdent || IsKeyword(name.Text) {
		return nil, errf(name.Line, "expected function name, found %s", name)
	}
	p.pos++
	if name.Text != "main" {
		return nil, errf(name.Line, "only void main() is supported, found function %q", name.Text)
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	p.acceptIdent("void")
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock(nil)
	if err != nil {
		return nil, err
	}
	return &FuncDecl{Name: name.Text, Body: body, Line: name.Line}, nil
}

// parseDeclarators parses `name [expr]? (, name [expr]?)* ;` after the
// type keyword.
func (p *parser) parseDeclarators(t ElemType, global bool) ([]*VarDecl, error) {
	var decls []*VarDecl
	for {
		tok := p.cur()
		if tok.Kind != TokIdent || IsKeyword(tok.Text) {
			return nil, errf(tok.Line, "expected variable name, found %s", tok)
		}
		p.pos++
		d := &VarDecl{Name: tok.Text, Type: t, Global: global, Line: tok.Line}
		if p.accept("[") {
			if !global {
				return nil, errf(tok.Line, "local arrays are not supported; declare %q at file scope", tok.Text)
			}
			size, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.IsArray = true
			d.Size = size
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	return decls, nil
}

// pending accumulates pragmas that must attach to the next statement.
type pending struct {
	parallel *acc.Directive
	local    []acc.LocalAccess
	reduce   *acc.ReductionToArray
	data     *acc.Directive
}

func (pd *pending) empty() bool {
	return pd.parallel == nil && len(pd.local) == 0 && pd.reduce == nil && pd.data == nil
}

func (p *parser) parseBlock(data *acc.Directive) (*Block, error) {
	line := p.cur().Line
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &Block{stmtBase: stmtBase{Line: line}, Data: data}
	for !p.accept("}") {
		if p.cur().Kind == TokEOF {
			return nil, errf(line, "unterminated block")
		}
		st, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if st != nil {
			b.Stmts = append(b.Stmts, st)
		}
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	var pd pending
	// Gather directives that prefix the statement.
	for p.cur().Kind == TokPragma {
		tok := p.next()
		d, err := acc.ParseDirectiveAt(tok.Text, tok.Line, tok.Col)
		if err != nil {
			return nil, err
		}
		switch d.Kind {
		case acc.KindUpdate:
			if !pd.empty() {
				return nil, errf(d.Line, "update directive cannot follow other pending directives")
			}
			return &UpdateStmt{stmtBase: stmtBase{Line: d.Line}, Directive: d}, nil
		case acc.KindData:
			if pd.data != nil {
				return nil, errf(d.Line, "duplicate data directive")
			}
			pd.data = d
		case acc.KindParallelLoop:
			if pd.parallel != nil {
				return nil, errf(d.Line, "duplicate parallel loop directive")
			}
			pd.parallel = d
		case acc.KindLocalAccess:
			la, err := acc.ParseLocalAccess(d)
			if err != nil {
				return nil, err
			}
			pd.local = append(pd.local, la)
		case acc.KindReductionToArray:
			if pd.reduce != nil {
				return nil, errf(d.Line, "duplicate reductiontoarray directive")
			}
			r, err := acc.ParseReductionToArray(d)
			if err != nil {
				return nil, err
			}
			pd.reduce = &r
		}
	}
	st, err := p.parseStmtBody(&pd)
	if err != nil {
		return nil, err
	}
	if !pd.empty() {
		return nil, errf(st.Pos(), "directive does not apply to this statement kind")
	}
	return st, nil
}

func (p *parser) parseStmtBody(pd *pending) (Stmt, error) {
	tok := p.cur()
	switch {
	case tok.Kind == TokPunct && tok.Text == "{":
		data := pd.data
		pd.data = nil
		return p.parseBlock(data)
	case tok.Kind == TokPunct && tok.Text == ";":
		p.pos++
		return &Block{stmtBase: stmtBase{Line: tok.Line}}, nil
	case tok.Kind == TokIdent && tok.Text == "if":
		return p.parseIf()
	case tok.Kind == TokIdent && tok.Text == "while":
		return p.parseWhile()
	case tok.Kind == TokIdent && tok.Text == "for":
		return p.parseFor(pd)
	case tok.Kind == TokIdent && tok.Text == "return":
		return nil, errf(tok.Line, "return is not supported in void main()")
	case tok.Kind == TokIdent && (tok.Text == "break" || tok.Text == "continue"):
		p.pos++
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BranchStmt{stmtBase: stmtBase{Line: tok.Line}, IsBreak: tok.Text == "break"}, nil
	default:
		if t, ok := p.typeName(); ok {
			p.pos++
			return p.parseLocalDecl(t, tok.Line)
		}
		st, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		if as, ok := st.(*AssignStmt); ok && pd.reduce != nil {
			as.Reduce = pd.reduce
			pd.reduce = nil
		}
		return st, nil
	}
}

// parseLocalDecl parses `type name (= expr)? (, name (= expr)?)* ;` and
// desugars initializers into a block of decl + assignments.
func (p *parser) parseLocalDecl(t ElemType, line int) (Stmt, error) {
	decl := &DeclStmt{stmtBase: stmtBase{Line: line}}
	var inits []Stmt
	for {
		tok := p.cur()
		if tok.Kind != TokIdent || IsKeyword(tok.Text) {
			return nil, errf(tok.Line, "expected variable name, found %s", tok)
		}
		p.pos++
		if p.cur().Kind == TokPunct && p.cur().Text == "[" {
			return nil, errf(tok.Line, "local arrays are not supported; declare %q at file scope", tok.Text)
		}
		d := &VarDecl{Name: tok.Text, Type: t, Line: tok.Line}
		decl.Decls = append(decl.Decls, d)
		if p.accept("=") {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			inits = append(inits, &AssignStmt{
				stmtBase: stmtBase{Line: tok.Line},
				LHS:      &Ident{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, Name: tok.Text},
				Op:       "=",
				RHS:      rhs,
			})
		}
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(inits) == 0 {
		return decl, nil
	}
	stmts := append([]Stmt{decl}, inits...)
	return &Block{stmtBase: stmtBase{Line: line}, Stmts: stmts}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.next().Line // "if"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{stmtBase: stmtBase{Line: line}, Cond: cond, Then: then}
	if p.acceptIdent("else") {
		st.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	line := p.next().Line // "while"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{stmtBase: stmtBase{Line: line}, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor(pd *pending) (Stmt, error) {
	line := p.next().Line // "for"
	if err := p.expect("("); err != nil {
		return nil, err
	}
	st := &ForStmt{stmtBase: stmtBase{Line: line}}
	if !p.accept(";") {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		as, ok := s.(*AssignStmt)
		if !ok {
			return nil, errf(line, "for-loop initializer must be an assignment")
		}
		st.Init = as
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cond = cond
		if err := p.expect(";"); err != nil {
			return nil, err
		}
	}
	if !p.accept(")") {
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		as, ok := s.(*AssignStmt)
		if !ok {
			return nil, errf(line, "for-loop post statement must be an assignment")
		}
		st.Post = as
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	st.Body = body
	st.Parallel = pd.parallel
	st.Local = pd.local
	pd.parallel, pd.local = nil, nil
	return st, nil
}

// parseSimpleStmt parses an assignment (including ++/-- desugaring).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	line := p.cur().Line
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	tok := p.cur()
	if tok.Kind == TokPunct {
		switch tok.Text {
		case "=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=":
			p.pos++
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{stmtBase: stmtBase{Line: line}, LHS: lhs, Op: tok.Text, RHS: rhs}, nil
		case "++", "--":
			p.pos++
			op := "+="
			if tok.Text == "--" {
				op = "-="
			}
			one := &NumLit{exprBase: exprBase{Line: line}, I: 1}
			return &AssignStmt{stmtBase: stmtBase{Line: line}, LHS: lhs, Op: op, RHS: one}, nil
		}
	}
	return nil, errf(line, "expected assignment statement, found %s", tok)
}

// Expression parsing: precedence climbing.

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return cond, nil
	}
	then, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	els, err := p.parseTernary()
	if err != nil {
		return nil, err
	}
	return &CondExpr{exprBase: exprBase{Line: cond.Pos(), Col: cond.Column()}, Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok := p.cur()
		if tok.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[tok.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{exprBase: exprBase{Line: lhs.Pos(), Col: lhs.Column()}, Op: tok.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	tok := p.cur()
	if tok.Kind == TokPunct {
		switch tok.Text {
		case "-", "!", "+", "~":
			p.pos++
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			if tok.Text == "+" {
				return x, nil
			}
			return &UnaryExpr{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, Op: tok.Text, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("["):
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			id, ok := x.(*Ident)
			if !ok {
				return nil, errf(x.Pos(), "only named arrays can be indexed")
			}
			x = &IndexExpr{
				exprBase: exprBase{Line: id.Line, Col: id.Col},
				Array:    &VarDecl{Name: id.Name, Line: id.Line}, // resolved by sema
				Index:    idx,
			}
		case p.accept("("):
			id, ok := x.(*Ident)
			if !ok {
				return nil, errf(x.Pos(), "only builtin functions can be called")
			}
			call := &CallExpr{exprBase: exprBase{Line: id.Line, Col: id.Col}, Name: id.Name}
			if !p.accept(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if p.accept(",") {
						continue
					}
					break
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	tok := p.cur()
	switch tok.Kind {
	case TokInt:
		p.pos++
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, errf(tok.Line, "bad integer literal %q", tok.Text)
		}
		return &NumLit{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, I: v}, nil
	case TokFloat:
		p.pos++
		v, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Line, "bad float literal %q", tok.Text)
		}
		return &NumLit{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, IsFloat: true, F: v}, nil
	case TokIdent:
		if IsKeyword(tok.Text) {
			return nil, errf(tok.Line, "unexpected keyword %q in expression", tok.Text)
		}
		p.pos++
		return &Ident{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, Name: tok.Text}, nil
	case TokPunct:
		if tok.Text == "(" {
			p.pos++
			if t, ok := p.typeName(); ok {
				// Cast: (type) unary.
				p.pos++
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.parseUnary()
				if err != nil {
					return nil, err
				}
				return &CastExpr{exprBase: exprBase{Line: tok.Line, Col: tok.Col}, To: t, X: x}, nil
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errf(tok.Line, "expected expression, found %s", tok)
}
