package cc

import (
	"strings"
	"testing"
)

// FuzzParseProgram checks the frontend never panics and that accepted
// programs re-parse identically (the source is stored verbatim).
// Run with `go test -fuzz=FuzzParseProgram ./internal/cc` to explore;
// the seed corpus alone runs under plain `go test`.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"void main() { }",
		"int n;\nfloat x[n];\nvoid main() { int i;\n#pragma acc parallel loop\nfor (i = 0; i < n; i++) { x[i] = 1.0; } }",
		"int n;\nvoid main() { while (n > 0) { n--; } }",
		"#pragma acc data copy(",
		"int a;;; void main() {}",
		"void main() { for (;;) {} }",
		"int \xff;",
		"void main() { a = 1 + ; }",
		"/* unterminated",
		"void main() { x[1[2]] = 3; }",
		"int n; void main() { n <<= 70; }",
		"float f; void main() { f = 1e999; }",
		"void main() { break; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return // rejected inputs just need to not panic
		}
		if prog.Source != src {
			t.Error("accepted program must retain its source")
		}
		// Re-parsing an accepted program must succeed.
		if _, err := ParseProgram(src); err != nil {
			t.Errorf("accepted program failed to re-parse: %v", err)
		}
	})
}

// FuzzLex checks the lexer is total: it either errors or produces a
// token stream terminated by EOF with monotone line numbers.
func FuzzLex(f *testing.F) {
	for _, s := range []string{
		"a b c", "1.5e-3f", "#pragma acc data", "/* x */ y", "a+++++b",
		"\n\n#\n", "\"string\"", "..", "0x1f",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := Lex(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Error("token stream must end with EOF")
		}
		line := 1
		for _, tk := range toks {
			if tk.Line < line {
				t.Errorf("line numbers must be monotone: %d after %d", tk.Line, line)
			}
			if tk.Line > 0 {
				line = tk.Line
			}
			if tk.Kind == TokIdent && tk.Text == "" {
				t.Error("empty identifier token")
			}
		}
		if strings.Count(src, "\n") > 0 && line == 0 {
			t.Error("line tracking lost")
		}
	})
}
