package cc

import (
	"accmulti/internal/acc"
)

// Builtin describes one math builtin callable from kernels and host
// code. Flops is the arithmetic weight charged by the cost model.
type Builtin struct {
	Arity int
	// IntCapable builtins (min/max/abs) stay integer when all
	// arguments are integers.
	IntCapable bool
	// Flops is the operation count charged per call.
	Flops int64
}

// Builtins is the table of supported math functions.
var Builtins = map[string]Builtin{
	"sqrt":  {Arity: 1, Flops: 8},
	"sqrtf": {Arity: 1, Flops: 8},
	"fabs":  {Arity: 1, Flops: 1},
	"fabsf": {Arity: 1, Flops: 1},
	"abs":   {Arity: 1, IntCapable: true, Flops: 1},
	"exp":   {Arity: 1, Flops: 12},
	"expf":  {Arity: 1, Flops: 12},
	"log":   {Arity: 1, Flops: 12},
	"logf":  {Arity: 1, Flops: 12},
	"pow":   {Arity: 2, Flops: 20},
	"powf":  {Arity: 2, Flops: 20},
	"floor": {Arity: 1, Flops: 1},
	"ceil":  {Arity: 1, Flops: 1},
	"min":   {Arity: 2, IntCapable: true, Flops: 1},
	"max":   {Arity: 2, IntCapable: true, Flops: 1},
}

// LocalSpec is a semantically resolved localaccess directive attached
// to a parallel loop.
type LocalSpec struct {
	Array     *VarDecl
	HasStride bool
	// Stride/Left/Right are the resolved stride-form expressions
	// (integer typed, evaluated in the host scope at kernel launch).
	Stride, Left, Right Expr
	// Lower/Upper are the resolved bounds-form expressions (integer
	// typed, functions of the induction variable).
	Lower, Upper Expr
	Line         int
	// Col is the source column of the localaccess clause and ClauseCol
	// the column of its stride()/bounds() clause (0 when unknown).
	Col, ClauseCol int
}

// ReduceSpec is a semantically resolved reductiontoarray directive.
type ReduceSpec struct {
	Op    string
	Array *VarDecl
	Line  int
}

type sema struct {
	prog                    *Program
	scope                   map[string]*VarDecl
	noDecl                  bool
	nInts, nFloats, nArrays int
	loopDepth               int
}

func analyze(prog *Program) error {
	sa := &sema{prog: prog, scope: make(map[string]*VarDecl)}
	for _, d := range prog.Globals {
		if err := sa.declare(d); err != nil {
			return err
		}
	}
	// Array sizes may reference global scalars (declared in any order,
	// as C permits for our host-bound model); resolve them now.
	for _, d := range prog.Globals {
		if d.IsArray {
			if err := sa.expr(d.Size); err != nil {
				return err
			}
			if d.Size.Type() != TInt {
				return errf(d.Line, "array %q size must be an integer expression", d.Name)
			}
		}
	}
	if err := sa.stmt(prog.Main.Body); err != nil {
		return err
	}
	prog.Scope = sa.scope
	prog.NumInts, prog.NumFloats, prog.NumArrays = sa.nInts, sa.nFloats, sa.nArrays
	return nil
}

func (sa *sema) declare(d *VarDecl) error {
	if IsKeyword(d.Name) {
		return errf(d.Line, "cannot declare keyword %q as a variable", d.Name)
	}
	if _, ok := Builtins[d.Name]; ok {
		return errf(d.Line, "cannot declare builtin %q as a variable", d.Name)
	}
	if prev, ok := sa.scope[d.Name]; ok {
		return errf(d.Line, "%q already declared at line %d (the subset uses one flat scope)", d.Name, prev.Line)
	}
	switch {
	case d.IsArray:
		d.Slot = sa.nArrays
		sa.nArrays++
	case d.Type == TInt:
		d.Slot = sa.nInts
		sa.nInts++
	default:
		d.Slot = sa.nFloats
		sa.nFloats++
	}
	sa.scope[d.Name] = d
	if !d.Global && sa.prog != nil {
		sa.prog.Main.Locals = append(sa.prog.Main.Locals, d)
	}
	return nil
}

func (sa *sema) lookup(name string, line int) (*VarDecl, error) {
	d, ok := sa.scope[name]
	if !ok {
		return nil, errf(line, "undeclared identifier %q", name)
	}
	return d, nil
}

func (sa *sema) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		if st.Data != nil {
			if _, err := sa.dataArrays(st.Data); err != nil {
				return err
			}
		}
		for _, sub := range st.Stmts {
			if err := sa.stmt(sub); err != nil {
				return err
			}
		}
	case *DeclStmt:
		if sa.noDecl {
			return errf(st.Line, "declarations are not allowed here")
		}
		for _, d := range st.Decls {
			if err := sa.declare(d); err != nil {
				return err
			}
		}
	case *AssignStmt:
		return sa.assign(st)
	case *IfStmt:
		if err := sa.expr(st.Cond); err != nil {
			return err
		}
		if err := sa.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return sa.stmt(st.Else)
		}
	case *WhileStmt:
		if err := sa.expr(st.Cond); err != nil {
			return err
		}
		sa.loopDepth++
		defer func() { sa.loopDepth-- }()
		return sa.stmt(st.Body)
	case *ForStmt:
		return sa.forStmt(st)
	case *BranchStmt:
		if sa.loopDepth == 0 {
			word := "continue"
			if st.IsBreak {
				word = "break"
			}
			return errf(st.Line, "%s outside of a loop", word)
		}
	case *UpdateStmt:
		for _, c := range st.Directive.Clauses {
			if c.Name != "host" && c.Name != "device" && c.Name != "self" {
				continue
			}
			for _, name := range c.Args {
				d, err := sa.lookup(name, st.Line)
				if err != nil {
					return err
				}
				if !d.IsArray {
					return errf(st.Line, "update %s(%s): %q is not an array", c.Name, name, name)
				}
			}
		}
	default:
		return errf(s.Pos(), "internal: unknown statement type %T", s)
	}
	return nil
}

func (sa *sema) dataArrays(d *acc.Directive) ([]acc.DataArg, error) {
	args, err := d.DataArgs()
	if err != nil {
		return nil, err
	}
	for _, a := range args {
		decl, err := sa.lookup(a.Array, d.Line)
		if err != nil {
			return nil, err
		}
		if !decl.IsArray {
			return nil, errf(d.Line, "data clause %s(%s): %q is not an array", a.Class, a.Array, a.Array)
		}
	}
	return args, nil
}

func (sa *sema) assign(st *AssignStmt) error {
	if err := sa.expr(st.RHS); err != nil {
		return err
	}
	switch lhs := st.LHS.(type) {
	case *Ident:
		d, err := sa.lookup(lhs.Name, lhs.Line)
		if err != nil {
			return err
		}
		if d.IsArray {
			return errf(lhs.Line, "cannot assign to array %q without an index", lhs.Name)
		}
		lhs.Decl = d
		lhs.setT(d.Type)
	case *IndexExpr:
		if err := sa.index(lhs); err != nil {
			return err
		}
	default:
		return errf(st.Line, "left side of assignment must be a variable or array element")
	}
	switch st.Op {
	case "%=", "<<=", ">>=":
		if st.LHS.Type() != TInt {
			return errf(st.Line, "operator %q requires an integer target", st.Op)
		}
	}
	if st.Reduce != nil {
		return sa.reduce(st)
	}
	return nil
}

func (sa *sema) reduce(st *AssignStmt) error {
	r := st.Reduce
	idx, ok := st.LHS.(*IndexExpr)
	if !ok {
		return errf(st.Line, "reductiontoarray must annotate an assignment to an array element")
	}
	if idx.Array.Name != r.Array {
		return errf(st.Line, "reductiontoarray names %q but the statement updates %q", r.Array, idx.Array.Name)
	}
	var wantOp string
	switch r.Op {
	case "+":
		wantOp = "+="
	case "*":
		wantOp = "*="
	default:
		return errf(st.Line, "reductiontoarray operator %q is not supported (use + or *)", r.Op)
	}
	if st.Op != wantOp {
		return errf(st.Line, "reductiontoarray(%s:...) requires the statement to use %q, found %q", r.Op, wantOp, st.Op)
	}
	return nil
}

func (sa *sema) forStmt(st *ForStmt) error {
	if st.Init != nil {
		if err := sa.assign(st.Init); err != nil {
			return err
		}
	}
	if st.Cond != nil {
		if err := sa.expr(st.Cond); err != nil {
			return err
		}
	}
	if st.Post != nil {
		if err := sa.assign(st.Post); err != nil {
			return err
		}
	}
	if st.Parallel != nil {
		if _, err := sa.dataArrays(st.Parallel); err != nil {
			return err
		}
		if _, err := st.Parallel.Reductions(); err != nil {
			return err
		}
		for _, red := range mustReductions(st.Parallel) {
			d, err := sa.lookup(red.Var, st.Parallel.Line)
			if err != nil {
				return err
			}
			if d.IsArray {
				return errf(st.Parallel.Line, "reduction(%s:%s): scalar reductions need a scalar variable (use reductiontoarray for arrays)", red.Op, red.Var)
			}
		}
	}
	for _, la := range st.Local {
		spec, err := sa.localSpec(la)
		if err != nil {
			return err
		}
		st.Specs = append(st.Specs, spec)
	}
	if len(st.Local) > 0 && st.Parallel == nil {
		return errf(st.Line, "localaccess directives require a parallel loop directive on the same loop")
	}
	sa.loopDepth++
	defer func() { sa.loopDepth-- }()
	return sa.stmt(st.Body)
}

func mustReductions(d *acc.Directive) []acc.Reduction {
	reds, _ := d.Reductions()
	return reds
}

func (sa *sema) localSpec(la acc.LocalAccess) (*LocalSpec, error) {
	decl, err := sa.lookup(la.Array, la.Line)
	if err != nil {
		return nil, err
	}
	if !decl.IsArray {
		return nil, errf(la.Line, "localaccess(%s): %q is not an array", la.Array, la.Array)
	}
	spec := &LocalSpec{Array: decl, HasStride: la.HasStride, Line: la.Line, Col: la.Col, ClauseCol: la.ClauseCol}
	parse := func(text string) (Expr, error) {
		e, err := ParseExprString(text, la.Line, sa.scope)
		if err != nil {
			return nil, err
		}
		if e.Type() != TInt {
			return nil, errf(la.Line, "localaccess(%s): expression %q must be integer typed", la.Array, text)
		}
		return e, nil
	}
	if la.HasStride {
		if spec.Stride, err = parse(la.Stride); err != nil {
			return nil, err
		}
		if spec.Left, err = parse(la.Left); err != nil {
			return nil, err
		}
		if spec.Right, err = parse(la.Right); err != nil {
			return nil, err
		}
	} else {
		if spec.Lower, err = parse(la.Lower); err != nil {
			return nil, err
		}
		if spec.Upper, err = parse(la.Upper); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

func (sa *sema) index(e *IndexExpr) error {
	// The parser leaves a placeholder VarDecl carrying only the name.
	d, err := sa.lookup(e.Array.Name, e.Line)
	if err != nil {
		return err
	}
	if !d.IsArray {
		return errf(e.Line, "%q is not an array", e.Array.Name)
	}
	e.Array = d
	if err := sa.expr(e.Index); err != nil {
		return err
	}
	if e.Index.Type() != TInt {
		return errf(e.Line, "array index must be an integer expression (cast with (int) if needed)")
	}
	e.setT(d.Type)
	return nil
}

func (sa *sema) expr(e Expr) error {
	switch x := e.(type) {
	case *NumLit:
		if x.IsFloat {
			x.setT(TDouble)
		} else {
			x.setT(TInt)
		}
	case *Ident:
		d, err := sa.lookup(x.Name, x.Line)
		if err != nil {
			return err
		}
		if d.IsArray {
			return errf(x.Line, "array %q must be indexed in expressions", x.Name)
		}
		x.Decl = d
		x.setT(d.Type)
	case *IndexExpr:
		return sa.index(x)
	case *BinaryExpr:
		if err := sa.expr(x.X); err != nil {
			return err
		}
		if err := sa.expr(x.Y); err != nil {
			return err
		}
		switch x.Op {
		case "%", "&", "|", "^", "<<", ">>":
			if x.X.Type() != TInt || x.Y.Type() != TInt {
				return errf(x.Line, "operator %q requires integer operands", x.Op)
			}
			x.setT(TInt)
		case "<", "<=", ">", ">=", "==", "!=", "&&", "||":
			x.setT(TInt)
		default: // + - * /
			if x.X.Type() == TInt && x.Y.Type() == TInt {
				x.setT(TInt)
			} else if x.X.Type() == TDouble || x.Y.Type() == TDouble {
				x.setT(TDouble)
			} else {
				x.setT(TFloat)
			}
		}
	case *UnaryExpr:
		if err := sa.expr(x.X); err != nil {
			return err
		}
		switch x.Op {
		case "!":
			x.setT(TInt)
		case "~":
			if x.X.Type() != TInt {
				return errf(x.Line, "operator ~ requires an integer operand")
			}
			x.setT(TInt)
		default: // -
			x.setT(x.X.Type())
		}
	case *CondExpr:
		if err := sa.expr(x.Cond); err != nil {
			return err
		}
		if err := sa.expr(x.Then); err != nil {
			return err
		}
		if err := sa.expr(x.Else); err != nil {
			return err
		}
		if x.Then.Type() == TInt && x.Else.Type() == TInt {
			x.setT(TInt)
		} else if x.Then.Type() == TDouble || x.Else.Type() == TDouble {
			x.setT(TDouble)
		} else {
			x.setT(TFloat)
		}
	case *CallExpr:
		b, ok := Builtins[x.Name]
		if !ok {
			return errf(x.Line, "unknown function %q (only math builtins can be called)", x.Name)
		}
		if len(x.Args) != b.Arity {
			return errf(x.Line, "%s expects %d arguments, got %d", x.Name, b.Arity, len(x.Args))
		}
		allInt := true
		for _, a := range x.Args {
			if err := sa.expr(a); err != nil {
				return err
			}
			if a.Type() != TInt {
				allInt = false
			}
		}
		if b.IntCapable && allInt {
			x.setT(TInt)
		} else {
			x.setT(TDouble)
		}
	case *CastExpr:
		if err := sa.expr(x.X); err != nil {
			return err
		}
		x.setT(x.To)
	default:
		return errf(e.Pos(), "internal: unknown expression type %T", e)
	}
	return nil
}
