package cc

import "accmulti/internal/acc"

// ElemType is the value type of a scalar or array element.
type ElemType int

const (
	// TInt is a C int: 4-byte storage, 64-bit arithmetic inside the
	// simulator (overflow-free for the index math the apps perform).
	TInt ElemType = iota
	// TFloat is a C float: 4-byte storage, float64 arithmetic.
	TFloat
	// TDouble is a C double: 8-byte storage, float64 arithmetic.
	TDouble
)

// Size returns the storage size in bytes of one element.
func (t ElemType) Size() int64 {
	if t == TDouble {
		return 8
	}
	return 4
}

// IsFloat reports whether the type uses floating-point arithmetic.
func (t ElemType) IsFloat() bool { return t != TInt }

func (t ElemType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TDouble:
		return "double"
	default:
		return "?"
	}
}

// VarDecl declares one scalar or array variable. Globals are bound by
// the host program at run time (the paper's model: arrays live in host
// memory and move to GPUs under data-directive control).
type VarDecl struct {
	Name    string
	Type    ElemType
	IsArray bool
	// Size is the element-count expression of an array (evaluated in
	// the global scalar scope at bind time).
	Size Expr
	// Global marks host-bound variables declared at file scope.
	Global bool
	// Slot is the variable's index in its environment table, assigned
	// by semantic analysis: arrays index the view table, int scalars
	// the int table, float/double scalars the float table.
	Slot int
	Line int
}

// Program is one analyzed translation unit.
type Program struct {
	Globals []*VarDecl
	Main    *FuncDecl
	// Scope maps every variable name (globals and main's locals; the
	// subset has one flat function scope) to its declaration, for
	// later parsing of directive argument expressions.
	Scope map[string]*VarDecl
	// NumInts, NumFloats, NumArrays size the environment tables.
	NumInts, NumFloats, NumArrays int
	// Source is the original text, kept for diagnostics and codegen.
	Source string
}

// ArrayDecls returns the global array declarations in source order.
func (p *Program) ArrayDecls() []*VarDecl {
	var out []*VarDecl
	for _, d := range p.Globals {
		if d.IsArray {
			out = append(out, d)
		}
	}
	return out
}

// FuncDecl is the single void main() of a program.
type FuncDecl struct {
	Name   string
	Body   *Block
	Locals []*VarDecl
	Line   int
}

// Expr is an expression node. Every node carries its source position
// and, after semantic analysis, its value type.
type Expr interface {
	Pos() int
	// Column is the 1-based source column of the expression's first
	// token (0 for synthesized nodes).
	Column() int
	// Type is the analyzed value type (valid after ParseProgram).
	Type() ElemType
}

type exprBase struct {
	Line int
	Col  int
	T    ElemType
}

func (e *exprBase) Pos() int        { return e.Line }
func (e *exprBase) Column() int     { return e.Col }
func (e *exprBase) Type() ElemType  { return e.T }
func (e *exprBase) setT(t ElemType) { e.T = t }

// NumLit is an integer or floating literal.
type NumLit struct {
	exprBase
	IsFloat bool
	I       int64
	F       float64
}

// Ident is a resolved scalar variable reference (array names never
// appear bare except in directives).
type Ident struct {
	exprBase
	Name string
	Decl *VarDecl
}

// IndexExpr is arr[index].
type IndexExpr struct {
	exprBase
	Array *VarDecl
	Index Expr
}

// BinaryExpr is x op y for op in + - * / % < <= > >= == != && || & | ^ << >>.
type BinaryExpr struct {
	exprBase
	Op   string
	X, Y Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	exprBase
	Op string
	X  Expr
}

// CondExpr is c ? a : b.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CallExpr invokes a math builtin.
type CallExpr struct {
	exprBase
	Name string
	Args []Expr
}

// CastExpr is (float)x / (int)x / (double)x.
type CastExpr struct {
	exprBase
	To ElemType
	X  Expr
}

// Stmt is a statement node.
type Stmt interface {
	Pos() int
}

type stmtBase struct{ Line int }

func (s *stmtBase) Pos() int { return s.Line }

// Block is { ... }. A data directive, when present, wraps the block in
// a device data region.
type Block struct {
	stmtBase
	Stmts []Stmt
	Data  *acc.Directive
}

// DeclStmt declares locals (no initializer in the subset; assign
// separately).
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// AssignStmt is lhs op rhs for op in = += -= *= /=. i++ / i-- are
// desugared to += / -= 1. A reductiontoarray directive, when present,
// marks this statement as an array reduction.
type AssignStmt struct {
	stmtBase
	LHS Expr // *Ident or *IndexExpr
	Op  string
	RHS Expr
	// Reduce is the attached reductiontoarray directive, if any.
	Reduce *acc.ReductionToArray
}

// IfStmt is if (cond) then [else els].
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is while (cond) body.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// ForStmt is for (init; cond; post) body. When Parallel is non-nil the
// loop is offloaded; Local lists its localaccess directives.
type ForStmt struct {
	stmtBase
	Init *AssignStmt // may be nil
	Cond Expr        // may be nil
	Post *AssignStmt // may be nil
	Body Stmt
	// Parallel is the attached `parallel loop` directive, if any.
	Parallel *acc.Directive
	// Local are the attached localaccess extensions.
	Local []acc.LocalAccess
	// Specs are the semantically resolved forms of Local.
	Specs []*LocalSpec
}

// BranchStmt is break or continue (IsBreak selects which), bound to
// the innermost enclosing loop.
type BranchStmt struct {
	stmtBase
	IsBreak bool
}

// UpdateStmt is the standalone `#pragma acc update ...` directive.
type UpdateStmt struct {
	stmtBase
	Directive *acc.Directive
}
