package cc

import (
	"strings"
	"testing"
	"testing/quick"
)

const saxpySrc = `
// saxpy with a halo read, exercising most of the subset.
int n;
float a;
float x[n], y[n + 1];

void main() {
    int i;
    float err;
    err = 0.0;
    #pragma acc data copyin(x) copy(y)
    {
        #pragma acc localaccess(x) stride(1)
        #pragma acc parallel loop reduction(+:err)
        for (i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
            err += y[i] * 0.5;
        }
        #pragma acc update host(y)
    }
}
`

func TestParseProgramSaxpy(t *testing.T) {
	prog, err := ParseProgram(saxpySrc)
	if err != nil {
		t.Fatalf("ParseProgram: %v", err)
	}
	if len(prog.Globals) != 4 {
		t.Fatalf("globals = %d", len(prog.Globals))
	}
	arrays := prog.ArrayDecls()
	if len(arrays) != 2 || arrays[0].Name != "x" || arrays[1].Name != "y" {
		t.Fatalf("arrays = %v", arrays)
	}
	if prog.NumArrays != 2 || prog.NumInts != 2 || prog.NumFloats != 2 {
		t.Fatalf("slot counts: arrays=%d ints=%d floats=%d", prog.NumArrays, prog.NumInts, prog.NumFloats)
	}
	// Locate the parallel loop and check attachments.
	var forStmt *ForStmt
	var walk func(s Stmt)
	walk = func(s Stmt) {
		switch st := s.(type) {
		case *Block:
			for _, sub := range st.Stmts {
				walk(sub)
			}
		case *ForStmt:
			if st.Parallel != nil {
				forStmt = st
			}
		}
	}
	walk(prog.Main.Body)
	if forStmt == nil {
		t.Fatal("no parallel loop found")
	}
	if len(forStmt.Specs) != 1 || forStmt.Specs[0].Array.Name != "x" || !forStmt.Specs[0].HasStride {
		t.Fatalf("local specs = %+v", forStmt.Specs)
	}
	reds, _ := forStmt.Parallel.Reductions()
	if len(reds) != 1 || reds[0].Var != "err" {
		t.Fatalf("reductions = %v", reds)
	}
}

func TestDataRegionAttachesToBlock(t *testing.T) {
	prog, err := ParseProgram(`
int n;
float a[n];
void main() {
    #pragma acc data copy(a)
    {
        int i;
        i = 0;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	blk, ok := prog.Main.Body.Stmts[0].(*Block)
	if !ok || blk.Data == nil {
		t.Fatalf("data region not attached: %T", prog.Main.Body.Stmts[0])
	}
}

func TestReductionToArrayAttachment(t *testing.T) {
	prog, err := ParseProgram(`
int n, k;
float feat[n], newc[k];
int member[n];
void main() {
    int i;
    #pragma acc parallel loop
    for (i = 0; i < n; i++) {
        #pragma acc reductiontoarray(+: newc[member[i]])
        newc[member[i]] += feat[i];
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Main.Body.Stmts[1].(*ForStmt)
	body := loop.Body.(*Block)
	as := body.Stmts[0].(*AssignStmt)
	if as.Reduce == nil || as.Reduce.Array != "newc" || as.Reduce.Op != "+" {
		t.Fatalf("reduce = %+v", as.Reduce)
	}
}

func TestLocalAccessBoundsResolved(t *testing.T) {
	prog, err := ParseProgram(`
int nv, ne;
int off[nv + 1], edges[ne];
void main() {
    int i;
    #pragma acc localaccess(off) stride(1, 0, 1)
    #pragma acc localaccess(edges) bounds(off[i], off[i+1]-1)
    #pragma acc parallel loop
    for (i = 0; i < nv; i++) {
        edges[off[i]] = i;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Main.Body.Stmts[1].(*ForStmt)
	if len(loop.Specs) != 2 {
		t.Fatalf("specs = %d", len(loop.Specs))
	}
	b := loop.Specs[1]
	if b.HasStride || b.Lower == nil || b.Upper == nil {
		t.Fatalf("bounds spec = %+v", b)
	}
	if b.Lower.Type() != TInt {
		t.Error("bounds exprs must be int typed")
	}
}

func TestDesugaring(t *testing.T) {
	prog, err := ParseProgram(`
int n;
void main() {
    int i = 3;
    i++;
    i -= 2;
    for (i = 0; i < n; i++) { i += 0; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	// int i = 3 desugars to a block {decl; assign}.
	blk, ok := prog.Main.Body.Stmts[0].(*Block)
	if !ok || len(blk.Stmts) != 2 {
		t.Fatalf("init desugaring: %T", prog.Main.Body.Stmts[0])
	}
	inc, ok := prog.Main.Body.Stmts[1].(*AssignStmt)
	if !ok || inc.Op != "+=" {
		t.Fatalf("i++ desugaring: %+v", prog.Main.Body.Stmts[1])
	}
}

func TestExprTyping(t *testing.T) {
	prog, err := ParseProgram(`
int n;
float x[n];
void main() {
    int i;
    float f;
    i = 3 / 2;
    f = 3.0 / 2;
    f = (float)i * 0.5;
    i = (int)(f + 0.5);
    i = i % 4;
    f = sqrt(f) + pow(f, 2.0);
    i = max(i, 2);
    f = max(f, 0.0);
    i = i < n && !(i == 0) ? i : n;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"void main() { }", ""}, // minimal program is fine
		{"int n; void main() { x = 1; }", "undeclared identifier"},
		{"int n; int n; void main() { }", "already declared"},
		{"float x; void main() { x[0] = 1.0; }", "not an array"},
		{"int n; float x[n]; void main() { x = 1.0; }", "cannot assign to array"},
		{"int n; float x[n]; void main() { n = x; }", "must be indexed"},
		{"int n; float x[n]; void main() { x[1.5] = 0.0; }", "index must be an integer"},
		{"void main() { return; }", "return is not supported"},
		{"void f() { }", "only void main"},
		{"int n; void main() { float n; }", "already declared"},
		{"void main() { int sqrt; }", "builtin"},
		{"void main() { int for; }", "expected variable name"},
		{"void main() { 1 + 2; }", "expected assignment"},
		{"void main() { foo(1); }", "expected assignment"},
		{"int n; void main() { n = bar(1); }", "unknown function"},
		{"int n; void main() { n = sqrt(1.0, 2.0); }", "expects 1 arguments"},
		{"int n; void main() { n = 1.5 % 2; }", "integer operands"},
		{"void main() { float a[10]; }", "local arrays are not supported"},
		{"float x[2.5]; void main() { }", "size must be an integer"},
		{"int n; float x[n]; void main() { int i;\n#pragma acc localaccess(x) stride(1)\nfor (i=0;i<n;i++){x[i]=0.0;} }", "require a parallel loop"},
		{"int n; float x[n]; void main() {\n#pragma acc data copy(x)\nx[0] = 1.0; }", "does not apply"},
		{"int n; void main() { if (n) { } else }", "expected expression"},
		{"void main() { for (;;) { } }", ""},
		{"int n; float x[n]; void main() { int i;\n#pragma acc parallel loop reduction(+:x)\nfor (i=0;i<n;i++){x[i]=0.0;} }", "scalar reductions need a scalar"},
	}
	for _, tc := range cases {
		_, err := ParseProgram(tc.src)
		if tc.want == "" {
			if err != nil {
				t.Errorf("ParseProgram(%q) unexpected error: %v", tc.src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("ParseProgram(%q) should fail with %q", tc.src, tc.want)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseProgram(%q) error = %v, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := Lex("a1 += 1.5e-3f; /* c1 */ b // c2\n#pragma acc data\nx >>= 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"a1", "+=", "1.5e-3", ";", "b", "acc data", "x", ">>=", "2", ""}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[2] != TokFloat {
		t.Error("1.5e-3f should lex as float")
	}
	if kinds[5] != TokPragma {
		t.Error("#pragma line should lex as pragma token")
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := Lex("a\nb\n\nc")
	if err != nil {
		t.Fatal(err)
	}
	wantLines := []int{1, 2, 4, 4}
	for i, w := range wantLines {
		if toks[i].Line != w {
			t.Errorf("token %d line = %d, want %d", i, toks[i].Line, w)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		"/* unterminated",
		"#include <stdio.h>",
		"a @ b",
		"a $ b",
	} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) should fail", src)
		}
	}
}

func TestLexerIdentVsExponent(t *testing.T) {
	toks, err := Lex("12e x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "12" || toks[1].Text != "e" {
		t.Errorf("12e should split into number and ident: %v %v", toks[0], toks[1])
	}
}

func TestParseExprString(t *testing.T) {
	prog, err := ParseProgram("int n;\nint off[n+1];\nvoid main() { int i; i = 0; }")
	if err != nil {
		t.Fatal(err)
	}
	e, err := ParseExprString("off[i+1]-1", 5, prog.Scope)
	if err != nil {
		t.Fatal(err)
	}
	if e.Type() != TInt {
		t.Errorf("type = %v", e.Type())
	}
	if _, err := ParseExprString("off[j]", 5, prog.Scope); err == nil {
		t.Error("undeclared j should fail")
	}
	if _, err := ParseExprString("i +", 5, prog.Scope); err == nil {
		t.Error("truncated expression should fail")
	}
	if _, err := ParseExprString("i; i", 5, prog.Scope); err == nil {
		t.Error("trailing tokens should fail")
	}
}

func TestElemType(t *testing.T) {
	if TInt.Size() != 4 || TFloat.Size() != 4 || TDouble.Size() != 8 {
		t.Error("element sizes wrong")
	}
	if TInt.IsFloat() || !TFloat.IsFloat() || !TDouble.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if TInt.String() != "int" || TFloat.String() != "float" || TDouble.String() != "double" {
		t.Error("String wrong")
	}
}

// Property: integer literals round-trip through the lexer.
func TestLexIntLiteralProperty(t *testing.T) {
	f := func(v uint32) bool {
		toks, err := Lex(itoa(int64(v)))
		return err == nil && len(toks) == 2 && toks[0].Kind == TokInt && toks[0].Text == itoa(int64(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestWhileAndUpdateParsing(t *testing.T) {
	prog, err := ParseProgram(`
int n, done;
float x[n];
void main() {
    int i;
    done = 0;
    while (!done) {
        done = 1;
        if (n > 0) { done = 0; n -= 1; } else { }
    }
    #pragma acc data copy(x)
    {
        #pragma acc update host(x)
        #pragma acc update device(x)
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	w, ok := prog.Main.Body.Stmts[2].(*WhileStmt)
	if !ok {
		t.Fatalf("want WhileStmt, got %T", prog.Main.Body.Stmts[2])
	}
	if _, ok := w.Body.(*Block); !ok {
		t.Error("while body should be a block")
	}
}

func TestUpdateSemaErrors(t *testing.T) {
	for _, tc := range []struct{ src, want string }{
		{"int n;\nfloat x[n];\nvoid main() {\n#pragma acc update host(n)\n}", "not an array"},
		{"int n;\nvoid main() {\n#pragma acc update host(zz)\n}", "undeclared"},
		{"int n;\nfloat x[n];\nvoid main() {\n#pragma acc data copy(n)\n{ }\n}", "not an array"},
		{"int n;\nfloat x[n];\nvoid main() { x[0] <<= 1; }", "integer target"},
		{"float f;\nvoid main() { f %= 2.0; }", "integer target"},
	} {
		if _, err := ParseProgram(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseProgram(%q) error = %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestShiftAssignParses(t *testing.T) {
	prog, err := ParseProgram("int a;\nvoid main() { a = 8; a >>= 2; a <<= 1; }")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Main.Body.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(prog.Main.Body.Stmts))
	}
}

func TestDirectiveSemaErrorPaths(t *testing.T) {
	cases := []struct{ src, want string }{
		// reductiontoarray mismatches.
		{"int n;\nfloat a[n], b[n];\nvoid main() { int i;\n#pragma acc parallel loop\nfor (i=0;i<n;i++){\n#pragma acc reductiontoarray(+: b[i])\na[i] += 1.0;\n} }", "names \"b\""},
		{"int n;\nfloat a[n];\nvoid main() { int i;\n#pragma acc parallel loop\nfor (i=0;i<n;i++){\n#pragma acc reductiontoarray(*: a[i])\na[i] += 1.0;\n} }", "requires the statement to use"},
		{"int n;\nfloat a[n];\nfloat s;\nvoid main() { int i;\n#pragma acc parallel loop\nfor (i=0;i<n;i++){\n#pragma acc reductiontoarray(+: a[i])\ns += 1.0;\n} }", "must annotate an assignment to an array element"},
		// localaccess semantic failures.
		{"int n;\nfloat s;\nfloat a[n];\nvoid main() { int i;\n#pragma acc localaccess(s) stride(1)\n#pragma acc parallel loop\nfor (i=0;i<n;i++){a[i]=0.0;} }", "not an array"},
		{"int n;\nfloat a[n];\nvoid main() { int i;\n#pragma acc localaccess(a) stride(1.5)\n#pragma acc parallel loop\nfor (i=0;i<n;i++){a[i]=0.0;} }", "must be integer typed"},
		{"int n;\nfloat a[n];\nvoid main() { int i;\n#pragma acc localaccess(a) bounds(zz, i)\n#pragma acc parallel loop\nfor (i=0;i<n;i++){a[i]=0.0;} }", "undeclared"},
		{"int n;\nfloat a[n];\nvoid main() { int i;\n#pragma acc localaccess(zz) stride(1)\n#pragma acc parallel loop\nfor (i=0;i<n;i++){a[i]=0.0;} }", "undeclared"},
	}
	for _, tc := range cases {
		_, err := ParseProgram(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseProgram error = %v, want %q", err, tc.want)
		}
	}
}

func TestExpectErrorMessage(t *testing.T) {
	_, err := ParseProgram("void main() { if (1 { } }")
	if err == nil || !strings.Contains(err.Error(), `expected ")"`) {
		t.Errorf("expect() message: %v", err)
	}
	_, err = ParseProgram("void main() { while (1 }")
	if err == nil {
		t.Error("bad while should fail")
	}
	_, err = ParseProgram("void main() { while 1 { } }")
	if err == nil || !strings.Contains(err.Error(), `expected "("`) {
		t.Errorf("while without parens: %v", err)
	}
}
