/* IMPROVABLE (ACCV012): both kernels touch a and b with the common
 * stride 1 and write only their own block, so the arrays could
 * distribute across the GPUs instead of replicating; the advisor
 * prints the exact localaccess to paste onto each loop.
 *   go run ./cmd/accc -vet examples/vet/replicated_affine.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copy(a, b)
    {
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            a[i] = i * 0.5;
        }
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            b[i] = a[i] * 2.0;
        }
    }
}
