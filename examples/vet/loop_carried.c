/* BROKEN (ACCV008): each iteration overwrites a[i] using a[i - 1]
 * from the previous iteration, a loop-carried dependence; block
 * distribution would read stale neighbour values at GPU boundaries.
 *   go run ./cmd/accc -vet examples/vet/loop_carried.c
 */
int n;
float a[n];

void main() {
    int i;
    #pragma acc data copy(a)
    {
        #pragma acc parallel loop
        for (i = 1; i < n; i++) {
            a[i] = a[i - 1] * 0.5;
        }
    }
}
