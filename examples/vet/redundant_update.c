/* WASTEFUL (ACCV011): the update host(a) gathers a although no
 * kernel has written it since the region loaded it; the transfer
 * re-copies clean data.
 *   go run ./cmd/accc -vet examples/vet/redundant_update.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copyin(a) copy(b)
    {
        #pragma acc localaccess(a) stride(1)
        #pragma acc localaccess(b) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            b[i] = a[i] + 1.0;
        }
        #pragma acc update host(a)
    }
}
