/* BROKEN (ACCV005): iterations i and i+1 both write a[2*i + 2], so
 * the result depends on which GPU's replica merges last.
 *   go run ./cmd/accc -vet examples/vet/write_conflict.c
 */
int n;
float a[2 * n + 2], x[n];

void main() {
    int i;
    #pragma acc data copyin(x) copy(a)
    {
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            a[2 * i] = x[i];
            a[2 * i + 2] = x[i];
        }
    }
}
