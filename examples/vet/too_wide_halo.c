/* SUBOPTIMAL (ACCV002): the declared halo of two elements on each
 * side is wider than the single b[i + 1] read needs, so every GPU
 * loads and keeps boundary data it never touches.
 *   go run ./cmd/accc -vet examples/vet/too_wide_halo.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copyin(b) copy(a)
    {
        #pragma acc localaccess(b) stride(1, 2, 2)
        #pragma acc localaccess(a) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n - 1; i++) {
            a[i] = b[i + 1];
        }
    }
}
