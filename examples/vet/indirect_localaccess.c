/* BROKEN (ACCV003): table is indexed through idx[i], so its
 * per-iteration footprint is data dependent; a localaccess stride
 * cannot describe it and the array must replicate.
 *   go run ./cmd/accc -vet examples/vet/indirect_localaccess.c
 */
int n;
float out[n], table[n];
int idx[n];

void main() {
    int i;
    #pragma acc data copyin(table, idx) copy(out)
    {
        #pragma acc localaccess(table) stride(1)
        #pragma acc localaccess(out) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            out[i] = table[idx[i]];
        }
    }
}
