/* RISKY (ACCV006): hist[b] += 1 is an array reduction with a
 * data-dependent bucket, but it carries no reductiontoarray
 * annotation, so colliding updates from different GPUs can be lost.
 *   go run ./cmd/accc -vet examples/vet/unannotated_reduction.c
 */
int n, k;
int data[n];
int hist[k];

void main() {
    int i, b;
    #pragma acc data copyin(data) copy(hist)
    {
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            b = (data[i] % k + k) % k;
            hist[b] += 1;
        }
    }
}
