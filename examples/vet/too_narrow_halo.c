/* BROKEN (ACCV001): the stencil reads b[i - 1] and b[i + 1] but
 * declares stride(1) with no halo, so on more than one GPU the
 * boundary reads fall outside the local partition.
 *   go run ./cmd/accc -vet examples/vet/too_narrow_halo.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copyin(b) copy(a)
    {
        #pragma acc localaccess(b) stride(1)
        #pragma acc localaccess(a) stride(1)
        #pragma acc parallel loop
        for (i = 1; i < n - 1; i++) {
            a[i] = b[i - 1] + b[i + 1];
        }
    }
}
