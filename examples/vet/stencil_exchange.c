/* CLEAN (ACCV007): an iterated ping-pong Jacobi sweep whose halo
 * windows force an inter-GPU boundary exchange after every launch;
 * the analyzer predicts the exchange the runtime will perform.
 *   go run ./cmd/accc -vet examples/vet/stencil_exchange.c
 *   go run ./cmd/accrun -gpus 4 -set n=1024 -trace out.json examples/vet/stencil_exchange.c
 */
int n;
int t;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copy(a, b)
    {
        t = 0;
        while (t < 10) {
            #pragma acc parallel loop
            #pragma acc localaccess(a) stride(1, 1, 1)
            #pragma acc localaccess(b) stride(1)
            for (i = 1; i < n - 1; i++) {
                b[i] = 0.5 * a[i - 1] + a[i] + 0.5 * a[i + 1];
            }
            #pragma acc parallel loop
            #pragma acc localaccess(b) stride(1, 1, 1)
            #pragma acc localaccess(a) stride(1)
            for (i = 1; i < n - 1; i++) {
                a[i] = 0.5 * b[i - 1] + b[i] + 0.5 * b[i + 1];
            }
            t += 1;
        }
    }
}
