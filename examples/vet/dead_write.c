/* WASTEFUL (ACCV010): b is created on the device and written by the
 * kernel, but nothing ever reads the written elements back; the
 * device write and its merge traffic are dead.
 *   go run ./cmd/accc -vet examples/vet/dead_write.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copyin(a) create(b)
    {
        #pragma acc localaccess(a) stride(1)
        #pragma acc localaccess(b) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            b[i] = a[i] * 2.0;
        }
    }
}
