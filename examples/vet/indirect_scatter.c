/* BROKEN (ACCV009): the scatter out[idx[i]] = ... cannot be proven
 * race free: two iterations may hit the same element, and the
 * multi-GPU merge would keep an arbitrary GPU's value. Make it a
 * reductiontoarray, or assert `independent` if idx is known to be a
 * permutation.
 *   go run ./cmd/accc -vet examples/vet/indirect_scatter.c
 */
int n;
float out[n], val[n];
int idx[n];

void main() {
    int i;
    #pragma acc data copyin(val, idx) copy(out)
    {
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            out[idx[i]] = val[i] + 1.0;
        }
    }
}
