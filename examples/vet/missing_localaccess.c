/* IMPROVABLE (ACCV004): b is read-only with purely affine reads, so
 * it could distribute across the GPUs instead of replicating; the
 * analyzer infers the exact localaccess directive to paste in.
 *   go run ./cmd/accc -vet examples/vet/missing_localaccess.c
 */
int n;
float a[n], b[n];

void main() {
    int i;
    #pragma acc data copyin(b) copy(a)
    {
        #pragma acc localaccess(a) stride(1)
        #pragma acc parallel loop
        for (i = 0; i < n - 1; i++) {
            a[i] = b[i] + b[i + 1];
        }
    }
}
