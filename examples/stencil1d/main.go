// Stencil example: an iterative 1-D three-point stencil (the 1-D slice
// of the paper's future-work stencil discussion). The halo form of
// localaccess — stride(1, 1, 1) — makes each GPU load its partition
// plus one ghost element per side; the halo writes of each sweep reach
// the neighbor partitions through the distributed-array write path.
//
//	go run ./examples/stencil1d
package main

import (
	"fmt"
	"log"
	"math"

	"accmulti"
)

const source = `
int n, steps;
float a[n], b[n];

void main() {
    int t, i;
    #pragma acc data copy(a) create(b)
    {
        for (t = 0; t < steps; t++) {
            #pragma acc localaccess(a) stride(1, 1, 1)
            #pragma acc localaccess(b) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                if (i > 0 && i < n - 1) {
                    b[i] = 0.25 * a[i - 1] + 0.5 * a[i] + 0.25 * a[i + 1];
                } else {
                    b[i] = a[i];
                }
            }
            #pragma acc localaccess(b) stride(1)
            #pragma acc localaccess(a) stride(1)
            #pragma acc parallel loop
            for (i = 0; i < n; i++) {
                a[i] = b[i];
            }
        }
    }
}
`

func main() {
	const (
		n     = 1 << 18
		steps = 20
	)
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	// A sharp spike diffuses into a smooth bump.
	a := accmulti.NewFloat32Array(n)
	a.F32[n/2] = 1000

	bind := accmulti.NewBindings().
		SetScalar("n", n).SetScalar("steps", steps).
		SetArray("a", a)
	res, err := prog.Run(bind, accmulti.Config{Machine: accmulti.Desktop()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %v\n", res.Report())

	out, _ := res.Float32("a")
	var sum float64
	peak := float64(0)
	for _, v := range out {
		sum += float64(v)
		peak = math.Max(peak, float64(v))
	}
	fmt.Printf("mass conserved: %.1f (want 1000.0)\n", sum)
	fmt.Printf("peak after %d smoothing steps: %.2f (started at 1000)\n", steps, peak)
	fmt.Printf("profile near center:")
	for i := n/2 - 4; i <= n/2+4; i++ {
		fmt.Printf(" %.1f", out[i])
	}
	fmt.Println()
}
