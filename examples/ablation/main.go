// Ablation example: run the same BFS-style program under the runtime's
// design-choice switches and compare what each mechanism buys — the
// two-level dirty bits, the distribution policy and the reload skip.
// This is the programmatic face of `accbench ablations`.
//
//	go run ./examples/ablation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"accmulti"
)

const source = `
int nv, ne, level, changed, iters, it;
int off[nv + 1];
int edges[ne];
int cost[nv];

void main() {
    int i;
    #pragma acc data copyin(off, edges) copy(cost)
    {
        changed = 1;
        level = 0;
        while (changed) {
            changed = 0;
            #pragma acc localaccess(off) stride(1, 0, 1)
            #pragma acc localaccess(edges) bounds(off[i], off[i+1]-1)
            #pragma acc parallel loop reduction(|:changed)
            for (i = 0; i < nv; i++) {
                int e, w;
                if (cost[i] == level) {
                    for (e = off[i]; e < off[i + 1]; e++) {
                        w = edges[e];
                        if (cost[w] < 0) {
                            cost[w] = level + 1;
                            changed = 1;
                        }
                    }
                }
            }
            level++;
        }
    }
}
`

func main() {
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		opts accmulti.Options
	}{
		{"proposal (all optimizations)", accmulti.Options{}},
		{"single-level dirty bits", accmulti.Options{DisableTwoLevelDirty: true}},
		{"replica-only placement", accmulti.Options{DisableDistribution: true}},
		{"always reload", accmulti.Options{DisableReloadSkip: true}},
		{"load-balanced partitions", accmulti.Options{BalanceLoad: true}},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tsim total\tH2D\tP2P")
	for _, cfg := range configs {
		bind, check := makeGraph()
		res, err := prog.Run(bind, accmulti.Config{
			Machine: accmulti.Desktop(),
			Options: cfg.opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := check(res); err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		rep := res.Report()
		fmt.Fprintf(w, "%s\t%v\t%.1fMB\t%.1fMB\n",
			cfg.name, rep.Total().Round(1000),
			float64(rep.BytesH2D)/1e6, float64(rep.BytesP2P)/1e6)
	}
	w.Flush()
	fmt.Println("\nevery configuration computes identical BFS levels; only costs differ")
}

// makeGraph builds a random recursive tree plus forward edges, and a
// checker that the BFS levels are a valid shortest-path labeling.
func makeGraph() (*accmulti.Bindings, func(*accmulti.Result) error) {
	const nv = 150000
	rng := rand.New(rand.NewSource(5))
	parent := make([]int32, nv)
	for v := 1; v < nv; v++ {
		parent[v] = int32(rng.Intn(v))
	}
	deg := make([]int32, nv)
	for v := 1; v < nv; v++ {
		deg[parent[v]]++
	}
	off := accmulti.NewInt32Array(nv + 1)
	for v := 0; v < nv; v++ {
		off.I32[v+1] = off.I32[v] + deg[v]
	}
	edges := accmulti.NewInt32Array(int(off.I32[nv]))
	fill := append([]int32(nil), off.I32[:nv]...)
	for v := 1; v < nv; v++ {
		edges.I32[fill[parent[v]]] = int32(v)
		fill[parent[v]]++
	}
	cost := accmulti.NewInt32Array(nv)
	for i := range cost.I32 {
		cost.I32[i] = -1
	}
	cost.I32[0] = 0

	bind := accmulti.NewBindings().
		SetScalar("nv", nv).SetScalar("ne", float64(len(edges.I32))).
		SetScalar("iters", 0).SetScalar("it", 0).
		SetArray("off", off).SetArray("edges", edges).SetArray("cost", cost)

	check := func(res *accmulti.Result) error {
		got, err := res.Int32("cost")
		if err != nil {
			return err
		}
		for v := 1; v < nv; v++ {
			p := parent[v]
			if got[v] < 0 {
				return fmt.Errorf("vertex %d unreached", v)
			}
			if got[v] > got[p]+1 {
				return fmt.Errorf("vertex %d level %d exceeds parent %d level %d + 1", v, got[v], p, got[p])
			}
		}
		return nil
	}
	return bind, check
}
