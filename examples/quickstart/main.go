// Quickstart: compile a single-GPU OpenACC program and run it
// unchanged on one and two simulated GPUs, printing the report the
// runtime keeps (the quantities behind the paper's figures).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"accmulti"
)

// A daxpy-like kernel with a scalar reduction. The localaccess
// directives tell the compiler each iteration reads only x[i] and
// y[i], so both arrays are distributed across GPUs instead of
// replicated.
const source = `
int n;
float a;
float x[n], y[n];
float checksum;

void main() {
    int i;
    checksum = 0.0;
    #pragma acc data copyin(x) copy(y)
    {
        #pragma acc localaccess(x) stride(1)
        #pragma acc localaccess(y) stride(1)
        #pragma acc parallel loop reduction(+:checksum)
        for (i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
            checksum += y[i];
        }
    }
}
`

func main() {
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	const n = 1 << 20
	x := accmulti.NewFloat32Array(n)
	y := accmulti.NewFloat32Array(n)
	for i := 0; i < n; i++ {
		x.F32[i] = float32(i%100) * 0.01
		y.F32[i] = 1
	}

	for _, gpus := range []int{1, 2} {
		// Rebind fresh inputs for each run.
		xi := accmulti.NewFloat32Array(n)
		yi := accmulti.NewFloat32Array(n)
		copy(xi.F32, x.F32)
		copy(yi.F32, y.F32)
		bind := accmulti.NewBindings().
			SetScalar("n", n).
			SetScalar("a", 2.0).
			SetArray("x", xi).
			SetArray("y", yi)

		res, err := prog.Run(bind, accmulti.Config{
			Machine: accmulti.Desktop().WithGPUs(gpus),
		})
		if err != nil {
			log.Fatal(err)
		}
		sum, _ := res.Scalar("checksum")
		fmt.Printf("%d GPU(s): %v  (checksum %.1f)\n", gpus, res.Report(), sum)
	}

	fmt.Println("\nGenerated CUDA-like code (excerpt):")
	src := prog.GeneratedSource()
	if len(src) > 900 {
		src = src[:900] + "...\n"
	}
	fmt.Print(src)
}
