// KMEANS example: the paper's Rodinia-style clustering workload,
// showing the reductiontoarray extension. The assignment loop reduces
// into the new-center accumulators with dynamically computed indices —
// a pattern stock OpenACC compilers must serialize — and the runtime
// completes the reduction hierarchically across GPUs.
//
//	go run ./examples/kmeans
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accmulti"
)

const source = `
int n, k, nf, iters;
float feat[n * nf];
float clusters[k * nf];
float newc[k * nf];
int count[k];
int member[n];
float delta;

void main() {
    int it, i, j;
    #pragma acc data copyin(feat) copy(clusters, member) create(newc, count)
    {
        for (it = 0; it < iters; it++) {
            delta = 0.0;
            #pragma acc localaccess(feat) stride(nf)
            #pragma acc localaccess(member) stride(1)
            #pragma acc parallel loop reduction(+:delta)
            for (i = 0; i < n; i++) {
                int f, best, c;
                float bestd;
                bestd = 1.0e30;
                best = 0;
                for (c = 0; c < k; c++) {
                    float d, diff;
                    d = 0.0;
                    for (f = 0; f < nf; f++) {
                        diff = feat[i * nf + f] - clusters[c * nf + f];
                        d += diff * diff;
                    }
                    if (d < bestd) { bestd = d; best = c; }
                }
                if (member[i] != best) { delta += 1.0; }
                member[i] = best;
                for (f = 0; f < nf; f++) {
                    #pragma acc reductiontoarray(+: newc[best * nf + f])
                    newc[best * nf + f] += feat[i * nf + f];
                }
                #pragma acc reductiontoarray(+: count[best])
                count[best] += 1;
            }
            #pragma acc parallel loop
            for (j = 0; j < k * nf; j++) {
                if (count[j / nf] > 0) {
                    clusters[j] = newc[j] / (float)count[j / nf];
                }
                newc[j] = 0.0;
            }
            for (j = 0; j < k; j++) { count[j] = 0; }
            #pragma acc update device(count)
        }
    }
}
`

func main() {
	const (
		n, nf, k = 40000, 16, 4
		iters    = 12
	)
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	// Four well-separated blobs.
	rng := rand.New(rand.NewSource(7))
	centers := make([]float32, k*nf)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64() * 8)
	}
	feat := accmulti.NewFloat32Array(n * nf)
	for p := 0; p < n; p++ {
		c := p % k
		for f := 0; f < nf; f++ {
			feat.F32[p*nf+f] = centers[c*nf+f] + float32(rng.NormFloat64())
		}
	}
	clusters := accmulti.NewFloat32Array(k * nf)
	copy(clusters.F32, feat.F32[:k*nf]) // seed with the first k points

	bind := accmulti.NewBindings().
		SetScalar("n", n).SetScalar("k", k).SetScalar("nf", nf).SetScalar("iters", iters).
		SetArray("feat", feat).SetArray("clusters", clusters)

	res, err := prog.Run(bind, accmulti.Config{Machine: accmulti.Desktop()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %v\n", res.Report())

	member, _ := res.Int32("member")
	sizes := make([]int, k)
	for _, m := range member {
		sizes[m]++
	}
	fmt.Printf("cluster sizes after %d iterations: %v (ideal %d each)\n", iters, sizes, n/k)
	got, _ := res.Float32("clusters")
	fmt.Printf("first center, first 4 features: %.2f %.2f %.2f %.2f\n",
		got[0], got[1], got[2], got[3])
}
