/* saxpy with localaccess footprints: both vectors distribute across
 * GPUs instead of replicating. Run with:
 *   go run ./cmd/accrun -gpus 2 -set n=1000000 -set a=2.0 examples/testdata/saxpy.c
 */
int n;
float a;
float x[n], y[n];

void main() {
    int i;
    #pragma acc data copyin(x) copy(y)
    {
        #pragma acc localaccess(x) stride(1)
        #pragma acc localaccess(y) stride(1)
        #pragma acc parallel loop gang vector
        for (i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
        }
    }
}
