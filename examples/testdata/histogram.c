/* Histogram: the reductiontoarray extension with dynamic bucket
 * indices — the pattern stock OpenACC compilers must serialize.
 *   go run ./cmd/accrun -set n=100000 -set k=16 -print hist examples/testdata/histogram.c
 */
int n, k;
int data[n];
int hist[k];

void main() {
    int i;
    #pragma acc data copyin(data) copy(hist)
    {
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
            int b;
            b = (data[i] % k + k) % k;
            #pragma acc reductiontoarray(+: hist[b])
            hist[b] += 1;
        }
    }
}
