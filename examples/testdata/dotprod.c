/* Dot product: a scalar reduction merged hierarchically across GPUs.
 *   go run ./cmd/accrun -gpus 3 -machine super -set n=500000 examples/testdata/dotprod.c
 */
int n;
float x[n], y[n];
float dot;

void main() {
    int i;
    dot = 0.0;
    #pragma acc localaccess(x) stride(1)
    #pragma acc localaccess(y) stride(1)
    #pragma acc parallel loop reduction(+:dot)
    for (i = 0; i < n; i++) {
        dot += x[i] * y[i];
    }
}
