// BFS example: level-synchronized breadth-first search on a CSR graph,
// showing the bounds form of the localaccess extension — each
// iteration's edge range is data dependent (off[i]..off[i+1]-1), yet
// the edge array still distributes across GPUs. Irregular writes to
// the cost array flow through the two-level dirty-bit machinery.
//
//	go run ./examples/bfs
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accmulti"
)

const source = `
int nv, ne, level, changed;
int off[nv + 1];
int edges[ne];
int cost[nv];

void main() {
    int i;
    #pragma acc data copyin(off, edges) copy(cost)
    {
        changed = 1;
        level = 0;
        while (changed) {
            changed = 0;
            #pragma acc localaccess(off) stride(1, 0, 1)
            #pragma acc localaccess(edges) bounds(off[i], off[i+1]-1)
            #pragma acc parallel loop reduction(|:changed)
            for (i = 0; i < nv; i++) {
                int e, w;
                if (cost[i] == level) {
                    for (e = off[i]; e < off[i + 1]; e++) {
                        w = edges[e];
                        if (cost[w] < 0) {
                            cost[w] = level + 1;
                            changed = 1;
                        }
                    }
                }
            }
            level++;
        }
    }
}
`

func main() {
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	// A random recursive tree plus extra forward edges: every vertex
	// w > 0 gets a uniform random parent among the earlier vertices,
	// which keeps the BFS depth logarithmic (~e*ln n levels).
	const nv = 200000
	rng := rand.New(rand.NewSource(3))
	parent := make([]int32, nv)
	for w := 1; w < nv; w++ {
		parent[w] = int32(rng.Intn(w))
	}
	extra := make([][2]int32, 0, 2*nv)
	for v := 0; v < nv-1; v++ {
		for d := 0; d < 2; d++ {
			extra = append(extra, [2]int32{int32(v), int32(v + 1 + rng.Intn(nv-v-1))})
		}
	}
	deg := make([]int32, nv)
	for w := 1; w < nv; w++ {
		deg[parent[w]]++
	}
	for _, e := range extra {
		deg[e[0]]++
	}
	offsets := accmulti.NewInt32Array(nv + 1)
	for v := 0; v < nv; v++ {
		offsets.I32[v+1] = offsets.I32[v] + deg[v]
	}
	edges := accmulti.NewInt32Array(int(offsets.I32[nv]))
	fill := make([]int32, nv)
	copy(fill, offsets.I32[:nv])
	for w := 1; w < nv; w++ {
		edges.I32[fill[parent[w]]] = int32(w)
		fill[parent[w]]++
	}
	for _, e := range extra {
		edges.I32[fill[e[0]]] = e[1]
		fill[e[0]]++
	}
	edgeList := edges.I32

	cost := accmulti.NewInt32Array(nv)
	for i := range cost.I32 {
		cost.I32[i] = -1
	}
	cost.I32[0] = 0

	bind := accmulti.NewBindings().
		SetScalar("nv", nv).SetScalar("ne", float64(len(edgeList))).
		SetArray("off", offsets).SetArray("edges", edges).SetArray("cost", cost)

	res, err := prog.Run(bind, accmulti.Config{Machine: accmulti.Desktop()})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report: %v\n", res.Report())

	final, _ := res.Int32("cost")
	levelHist := map[int32]int{}
	maxLevel := int32(0)
	for _, c := range final {
		levelHist[c]++
		if c > maxLevel {
			maxLevel = c
		}
	}
	fmt.Printf("BFS depth %d; unreachable %d of %d vertices\n", maxLevel, levelHist[-1], nv)
	for l := int32(0); l <= maxLevel && l < 8; l++ {
		fmt.Printf("  level %d: %d vertices\n", l, levelHist[l])
	}
}
