// MD example: the SHOC-style Lennard-Jones force kernel on one and two
// simulated GPUs. The neighbor lists distribute with a constant-stride
// localaccess and the per-atom force writes are statically proven to
// stay in the local partition, so the kernel needs no inter-GPU
// communication at all — the paper's best-scaling case.
//
//	go run ./examples/md
package main

import (
	"fmt"
	"log"
	"math/rand"

	"accmulti"
)

const source = `
int natoms, maxn;
float lj1, lj2, cutsq;
float pos[4 * natoms];
float force[4 * natoms];
int nbr[maxn * natoms];

void main() {
    int i;
    #pragma acc data copyin(pos, nbr) copyout(force)
    {
        #pragma acc localaccess(nbr) stride(maxn)
        #pragma acc localaccess(force) stride(4)
        #pragma acc parallel loop
        for (i = 0; i < natoms; i++) {
            int j, jn;
            float fx, fy, fz;
            fx = 0.0; fy = 0.0; fz = 0.0;
            for (j = 0; j < maxn; j++) {
                jn = nbr[i * maxn + j];
                if (jn >= 0) {
                    float dx, dy, dz, r2, ir2, r6, fr;
                    dx = pos[4 * i] - pos[4 * jn];
                    dy = pos[4 * i + 1] - pos[4 * jn + 1];
                    dz = pos[4 * i + 2] - pos[4 * jn + 2];
                    r2 = dx * dx + dy * dy + dz * dz;
                    if (r2 < cutsq) {
                        ir2 = 1.0 / r2;
                        r6 = ir2 * ir2 * ir2;
                        fr = r6 * (lj1 * r6 - lj2) * ir2;
                        fx += dx * fr;
                        fy += dy * fr;
                        fz += dz * fr;
                    }
                }
            }
            force[4 * i] = fx;
            force[4 * i + 1] = fy;
            force[4 * i + 2] = fz;
            force[4 * i + 3] = 0.0;
        }
    }
}
`

func main() {
	const (
		natoms = 16384
		maxn   = 64
	)
	prog, err := accmulti.Compile(source)
	if err != nil {
		log.Fatal(err)
	}

	// Atoms on a jittered lattice; neighbors = the maxn nearest lattice
	// sites via brute cell search (kept simple for the example).
	rng := rand.New(rand.NewSource(11))
	side := 26 // 26^3 > 16384
	pos := accmulti.NewFloat32Array(4 * natoms)
	for i := 0; i < natoms; i++ {
		pos.F32[4*i] = float32(i%side) + float32(rng.Float64())*0.2
		pos.F32[4*i+1] = float32((i/side)%side) + float32(rng.Float64())*0.2
		pos.F32[4*i+2] = float32(i/(side*side)) + float32(rng.Float64())*0.2
	}
	const cut = 2.0
	nbr := accmulti.NewInt32Array(natoms * maxn)
	for i := 0; i < natoms; i++ {
		cnt := 0
		for d := 1; d < natoms && cnt < maxn; d++ {
			for _, j := range []int{i - d, i + d} {
				if j < 0 || j >= natoms || cnt == maxn {
					continue
				}
				dx := pos.F32[4*i] - pos.F32[4*j]
				dy := pos.F32[4*i+1] - pos.F32[4*j+1]
				dz := pos.F32[4*i+2] - pos.F32[4*j+2]
				if dx*dx+dy*dy+dz*dz < cut*cut {
					nbr.I32[i*maxn+cnt] = int32(j)
					cnt++
				}
			}
			if d > 3*side*side { // no more candidates nearby
				break
			}
		}
		for ; cnt < maxn; cnt++ {
			nbr.I32[i*maxn+cnt] = -1
		}
	}

	for _, gpus := range []int{1, 2} {
		bind := accmulti.NewBindings().
			SetScalar("natoms", natoms).SetScalar("maxn", maxn).
			SetScalar("lj1", 1.5).SetScalar("lj2", 2.0).SetScalar("cutsq", cut*cut).
			SetArray("pos", pos).SetArray("nbr", nbr)
		res, err := prog.Run(bind, accmulti.Config{
			Machine: accmulti.Desktop().WithGPUs(gpus),
		})
		if err != nil {
			log.Fatal(err)
		}
		rep := res.Report()
		fmt.Printf("%d GPU(s): total %v (kernels %v, cpu-gpu %v, gpu-gpu %v)\n",
			gpus, rep.Total(), rep.KernelTime, rep.CPUGPUTime, rep.GPUGPUTime)
		if rep.BytesP2P != 0 {
			log.Fatal("MD should need no inter-GPU communication")
		}
	}
	fmt.Println("no inter-GPU bytes moved, as the paper reports for MD")
}
