package accmulti

import (
	"strings"
	"testing"
)

const facadeSrc = `
int n;
float a;
float x[n], y[n];
float checksum;

void main() {
    int i;
    checksum = 0.0;
    #pragma acc data copyin(x) copy(y)
    {
        #pragma acc localaccess(x) stride(1)
        #pragma acc localaccess(y) stride(1)
        #pragma acc parallel loop reduction(+:checksum)
        for (i = 0; i < n; i++) {
            y[i] = a * x[i] + y[i];
            checksum += y[i];
        }
    }
}
`

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}

	const n = 10000
	x := NewFloat32Array(n)
	y := NewFloat32Array(n)
	for i := 0; i < n; i++ {
		x.F32[i] = 1
		y.F32[i] = 2
	}
	bind := NewBindings().SetScalar("n", n).SetScalar("a", 3).
		SetArray("x", x).SetArray("y", y)

	res, err := prog.Run(bind, Config{Machine: Desktop()})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.Float32("y")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[i] != 5 {
			t.Fatalf("y[%d] = %g, want 5", i, out[i])
		}
	}
	sum, err := res.Scalar("checksum")
	if err != nil {
		t.Fatal(err)
	}
	if sum != 5*n {
		t.Fatalf("checksum = %g, want %d", sum, 5*n)
	}
	rep := res.Report()
	if rep.Total() <= 0 || rep.BytesH2D == 0 {
		t.Errorf("report incomplete: %v", rep)
	}
}

func TestFacadeModes(t *testing.T) {
	prog, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeCPU, ModeBaseline, ModeCUDA, ModeMultiGPU} {
		bind := NewBindings().SetScalar("n", 100).SetScalar("a", 1)
		res, err := prog.Run(bind, Config{
			Machine: SupercomputerNode(),
			Options: Options{Mode: mode},
		})
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if res.Report().KernelLaunches != 1 {
			t.Errorf("mode %v: launches = %d", mode, res.Report().KernelLaunches)
		}
	}
}

func TestFacadeGeneratedSourceAndStats(t *testing.T) {
	prog, err := Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.GeneratedSource(), "__global__") {
		t.Error("generated source missing kernel")
	}
	s := prog.Stats()
	if s.ParallelLoops != 1 || s.LocalAccessArrays != 2 || s.ArraysInLoops != 2 {
		t.Errorf("stats = %+v", s)
	}
	mem, err := prog.DeviceMemoryUsage(NewBindings().SetScalar("n", 1000))
	if err != nil {
		t.Fatal(err)
	}
	if mem != 8000 {
		t.Errorf("device memory = %d, want 8000", mem)
	}
}

func TestFacadeCompileError(t *testing.T) {
	if _, err := Compile("void main() { x = 1; }"); err == nil {
		t.Error("undeclared identifier should fail")
	}
}

func TestFacadeInt32Arrays(t *testing.T) {
	prog, err := Compile(`
int n;
int v[n];
void main() {
    int i;
    #pragma acc parallel loop
    for (i = 0; i < n; i++) { v[i] = 2 * i; }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(NewBindings().SetScalar("n", 8), Config{Machine: Desktop()})
	if err != nil {
		t.Fatal(err)
	}
	v, err := res.Int32("v")
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range v {
		if got != int32(2*i) {
			t.Fatalf("v[%d] = %d", i, got)
		}
	}
}
