package accmulti

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark executes the full functional
// simulation and reports the paper's metric as custom units
// (sim-µs/op, speedup-vs-OpenMP, normalized breakdowns), so
// `go test -bench=. -benchmem` regenerates the evaluation's rows.
//
// Benchmarks run at reduced input scales (fractions of the paper's
// sizes) so a full sweep stays in the minutes; cmd/accbench runs the
// same harness at larger scales.

import (
	"fmt"
	"testing"

	"accmulti/internal/apps"
	"accmulti/internal/core"
	"accmulti/internal/rt"
	"accmulti/internal/sim"
)

// benchScales keeps go-test sweeps fast; the shapes (who wins, rough
// factors) already hold at these sizes. cmd/accbench runs the same
// matrix at larger scales through internal/bench.
var benchScales = map[string]float64{
	"MD":     0.25,
	"KMEANS": 0.02,
	"BFS":    0.04,
}

// runPoint executes one app/machine/mode configuration and returns the
// simulated report.
func runPoint(b *testing.B, appName string, spec sim.MachineSpec, opts rt.Options) *rt.Report {
	b.Helper()
	app, err := apps.ByName(appName)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.Compile(app.Source)
	if err != nil {
		b.Fatal(err)
	}
	in, err := app.Generate(benchScales[appName], 20130701)
	if err != nil {
		b.Fatal(err)
	}
	res, err := prog.Run(in.Bindings, core.Config{Machine: spec, Options: opts})
	if err != nil {
		b.Fatal(err)
	}
	return res.Report
}

// BenchmarkTable1MachineModels instantiates the two evaluation
// platforms (paper Table I) once per iteration.
func BenchmarkTable1MachineModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, spec := range []sim.MachineSpec{sim.Desktop(), sim.SupercomputerNode()} {
			if _, err := sim.NewMachine(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTable2Characteristics compiles the three applications and
// reports their Table II columns as benchmark metrics.
func BenchmarkTable2Characteristics(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			var prog *core.Program
			var err error
			for i := 0; i < b.N; i++ {
				prog, err = core.Compile(app.Source)
				if err != nil {
					b.Fatal(err)
				}
			}
			s := prog.Stats()
			b.ReportMetric(float64(s.ParallelLoops), "loops(B)")
			b.ReportMetric(float64(s.LocalAccessArrays), "localaccess(D-num)")
			b.ReportMetric(float64(s.ArraysInLoops), "arrays(D-den)")
		})
	}
}

// BenchmarkFig7RelativePerformance reproduces the paper's Figure 7:
// every version bar on both machines, reporting speedup-vs-OpenMP.
func BenchmarkFig7RelativePerformance(b *testing.B) {
	for _, machine := range []sim.MachineSpec{sim.Desktop(), sim.SupercomputerNode()} {
		for _, appName := range []string{"MD", "KMEANS", "BFS"} {
			name := fmt.Sprintf("%s/%s", short(machine.Name), appName)
			b.Run(name, func(b *testing.B) {
				var omp, best float64
				for i := 0; i < b.N; i++ {
					ompRep := runPoint(b, appName, machine, rt.Options{Mode: rt.ModeCPU})
					omp = float64(ompRep.Total())
					for g := 1; g <= machine.NumGPUs; g++ {
						rep := runPoint(b, appName, machine.WithGPUs(g), rt.Options{Mode: rt.ModeMultiGPU})
						if s := omp / float64(rep.Total()); s > best {
							best = s
						}
					}
				}
				b.ReportMetric(best, "best-speedup-vs-OpenMP")
			})
		}
	}
}

// BenchmarkFig8Breakdown reproduces Figure 8: the multi-GPU runs'
// GPU-GPU / CPU-GPU / KERNELS split, normalized to the 1-GPU total.
func BenchmarkFig8Breakdown(b *testing.B) {
	for _, machine := range []sim.MachineSpec{sim.Desktop(), sim.SupercomputerNode()} {
		for _, appName := range []string{"MD", "KMEANS", "BFS"} {
			name := fmt.Sprintf("%s/%s/%dGPU", short(machine.Name), appName, machine.NumGPUs)
			b.Run(name, func(b *testing.B) {
				var gg, cg, ker float64
				for i := 0; i < b.N; i++ {
					base := runPoint(b, appName, machine.WithGPUs(1), rt.Options{})
					rep := runPoint(b, appName, machine, rt.Options{})
					norm := float64(base.Total())
					gg = float64(rep.GPUGPUTime) / norm
					cg = float64(rep.CPUGPUTime) / norm
					ker = float64(rep.KernelTime) / norm
				}
				b.ReportMetric(gg, "gpu-gpu")
				b.ReportMetric(cg, "cpu-gpu")
				b.ReportMetric(ker, "kernels")
			})
		}
	}
}

// BenchmarkFig9Memory reproduces Figure 9: peak device memory split
// into User and System, normalized to the 1-GPU user bytes.
func BenchmarkFig9Memory(b *testing.B) {
	for _, appName := range []string{"MD", "KMEANS", "BFS"} {
		b.Run(appName, func(b *testing.B) {
			var user, system float64
			for i := 0; i < b.N; i++ {
				base := runPoint(b, appName, sim.Desktop().WithGPUs(1), rt.Options{})
				rep := runPoint(b, appName, sim.Desktop(), rt.Options{})
				user = float64(rep.PeakUserBytes) / float64(base.PeakUserBytes)
				system = float64(rep.PeakSystemBytes) / float64(base.PeakUserBytes)
			}
			b.ReportMetric(user, "user-norm")
			b.ReportMetric(system, "system-norm")
		})
	}
}

// BenchmarkAblationChunkSize sweeps the second-level dirty chunk size
// on BFS — the paper chose 1 MB experimentally (§IV-D1).
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunk := range []int64{64 << 10, 1 << 20, 16 << 20} {
		b.Run(fmt.Sprintf("%dKiB", chunk>>10), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "BFS", sim.Desktop(), rt.Options{ChunkBytes: chunk})
				total = float64(rep.Total().Microseconds())
			}
			b.ReportMetric(total, "sim-µs")
		})
	}
}

// BenchmarkAblationTwoLevelDirty compares the two-level dirty-bit
// scheme against the single-level degradation on BFS.
func BenchmarkAblationTwoLevelDirty(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"two-level", false}, {"single-level", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var p2p float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "BFS", sim.Desktop(), rt.Options{DisableTwoLevelDirty: tc.disable})
				p2p = float64(rep.BytesP2P)
			}
			b.ReportMetric(p2p/1e6, "p2p-MB")
		})
	}
}

// BenchmarkAblationDistribution compares distribution-based placement
// against replica-only placement on MD.
func BenchmarkAblationDistribution(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"distribution", false}, {"replica-only", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var h2d float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "MD", sim.Desktop(), rt.Options{DisableDistribution: tc.disable})
				h2d = float64(rep.BytesH2D)
			}
			b.ReportMetric(h2d/1e6, "h2d-MB")
		})
	}
}

// BenchmarkAblationLayoutTransform compares the 2-D coalescing layout
// transform on and off on KMEANS.
func BenchmarkAblationLayoutTransform(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"transformed", false}, {"row-major", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var kern float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "KMEANS", sim.Desktop().WithGPUs(1), rt.Options{DisableLayoutTransform: tc.disable})
				kern = float64(rep.KernelTime.Microseconds())
			}
			b.ReportMetric(kern, "kernel-µs")
		})
	}
}

// BenchmarkAblationReductionToArray compares the extension against the
// stock compiler's serialized array reductions on KMEANS (1 GPU).
func BenchmarkAblationReductionToArray(b *testing.B) {
	for _, tc := range []struct {
		name string
		mode rt.Mode
	}{{"reductiontoarray", rt.ModeCUDA}, {"serialized-stock", rt.ModeBaseline}} {
		b.Run(tc.name, func(b *testing.B) {
			var kern float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "KMEANS", sim.Desktop().WithGPUs(1), rt.Options{Mode: tc.mode})
				kern = float64(rep.KernelTime.Microseconds())
			}
			b.ReportMetric(kern, "kernel-µs")
		})
	}
}

// BenchmarkAblationReloadSkip compares the loader's reload-skip
// optimization against always reloading on KMEANS.
func BenchmarkAblationReloadSkip(b *testing.B) {
	for _, tc := range []struct {
		name    string
		disable bool
	}{{"skip-unchanged", false}, {"always-reload", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var h2d float64
			for i := 0; i < b.N; i++ {
				rep := runPoint(b, "KMEANS", sim.Desktop(), rt.Options{DisableReloadSkip: tc.disable})
				h2d = float64(rep.BytesH2D)
			}
			b.ReportMetric(h2d/1e6, "h2d-MB")
		})
	}
}

// BenchmarkCompile measures compiler throughput on the three apps.
func BenchmarkCompile(b *testing.B) {
	for _, app := range apps.All() {
		b.Run(app.Name, func(b *testing.B) {
			b.SetBytes(int64(len(app.Source)))
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(app.Source); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelInterpreter measures the functional kernel execution
// rate (iterations/s of the MD force loop on the simulated GPUs).
func BenchmarkKernelInterpreter(b *testing.B) {
	app, _ := apps.ByName("MD")
	prog, err := core.Compile(app.Source)
	if err != nil {
		b.Fatal(err)
	}
	in, err := app.Generate(0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prog.Run(in.Bindings, core.Config{Machine: sim.Desktop()}); err != nil {
			b.Fatal(err)
		}
	}
}

func short(machine string) string {
	if machine == "Desktop Machine" {
		return "Desktop"
	}
	return "SuperNode"
}
