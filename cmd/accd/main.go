// Command accd serves the OpenACC compile-and-run pipeline over
// HTTP/JSON: many concurrent clients share one content-hash cache of
// compiled programs and one bounded pool of simulated machines.
//
// Usage:
//
//	accd [-addr :8080] [-cache 256] [-concurrency n] [-queue 1024]
//	     [-timeout 60s] [-pool-idle n]
//
// Endpoints:
//
//	POST /v1/run      compile (or reuse), vet on request, and execute;
//	                  the JSON body is serve.RunRequest, the response
//	                  carries the report, final scalars and per-array
//	                  SHA-256 digests. X-Accd-Cache says hit or miss.
//	POST /v1/compile  compile only; returns the content-hash key,
//	                  static stats and (on request) diagnostics and
//	                  the generated source.
//	GET  /v1/metrics  the service metrics registry as JSON.
//	GET  /healthz     liveness plus current load.
//
// Responses are deterministic: the body of every reply is a pure
// function of the request, so the same request returns bit-identical
// bytes whether the daemon is idle or saturated. Overload is explicit:
// when the admission queue is full the daemon answers 429 with a
// Retry-After header rather than queueing without bound.
//
// SIGINT/SIGTERM drain gracefully: in-flight runs finish and respond
// normally, queued requests receive a structured shutting_down error,
// and the process exits once the last run has left (or after the
// drain grace period).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accmulti/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		cache       = flag.Int("cache", 0, "program-cache capacity in entries (0 = default)")
		concurrency = flag.Int("concurrency", 0, "concurrent run slots (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "admission queue depth (0 = default, negative = none)")
		timeout     = flag.Duration("timeout", 0, "default per-request timeout (0 = 60s)")
		poolIdle    = flag.Int("pool-idle", 0, "max idle pooled machines (0 = concurrency)")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "how long shutdown waits for in-flight runs")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: accd [flags]")
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		CacheEntries:    *cache,
		Concurrency:     *concurrency,
		QueueDepth:      *queue,
		DefaultTimeout:  *timeout,
		MaxIdleMachines: *poolIdle,
	})
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	errc := make(chan error, 1)
	go func() {
		log.Printf("accd: listening on %s (%s)", *addr, srv)
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("accd: %v", err)
	case sig := <-sigc:
		log.Printf("accd: %v: draining (in-flight runs finish, queued requests are refused)", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("accd: drain incomplete after %s: %v", *drainGrace, err)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("accd: http shutdown: %v", err)
	}
	log.Printf("accd: stopped")
}
