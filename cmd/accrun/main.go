// Command accrun compiles an OpenACC C file and executes it on a
// simulated multi-GPU machine, printing the execution report (time
// breakdown, transfer volumes, device memory peaks). Scalar parameters
// are bound with -set name=value; arrays not bound start zeroed.
//
// Usage:
//
//	accrun [-machine desktop|super|NxM[:opts]] [-gpus n] [-mode proposal|openmp|baseline|cuda]
//	       [-vet [-json]] [-audit] [-faults seed=7,oomgpu=1,oomalloc=5,...] [-no-async]
//	       [-trace out.trace.json] [-metrics out.metrics.json] [-narrate]
//	       [-set n=1000 -set a=2.5 ...] [-print arr] file.c
//
// Runs execute under the asynchronous pipelined scheduler by default:
// results and transfer accounting are bit-identical to the
// bulk-synchronous schedule, but the reported total is the overlapped
// makespan. -no-async restores the strict phase-by-phase timeline.
//
// -trace writes a deterministic Chrome trace-event file (open it in a
// Chromium browser's about://tracing, or drop it on ui.perfetto.dev):
// one lane per GPU plus host and comms lanes, stamped with the
// simulated clock. -metrics dumps the aggregate counters and
// histograms as JSON. -narrate prints the legacy one-line-per-event
// commentary to stderr.
//
// -vet runs the accvet directive checks first, printing diagnostics to
// stderr and refusing to execute a program with verification errors;
// -json switches the diagnostic rendering to a JSON array.
//
// -machine also accepts a cluster topology, nodes x GPUs-per-node with
// optional overrides: `2x4`, `2x2:nic=1G:niclat=10`,
// `2x4:base=desktop:pcie=8G`. Arrays block-partition across nodes and
// then across each node's GPUs; traffic crossing nodes is staged over
// the modeled network and shows up on per-NIC trace lanes. A topology
// fixes the GPU count, so it cannot be combined with -gpus. The
// degenerate `1xN` is bit-identical to the flat N-GPU machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"accmulti/internal/cliutil"
	"accmulti/internal/core"
	"accmulti/internal/diag"
	"accmulti/internal/ir"
	"accmulti/internal/rt"
)

type setFlags []string

func (s *setFlags) String() string     { return strings.Join(*s, ",") }
func (s *setFlags) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var sets setFlags
	var rf cliutil.RunFlags
	machine := flag.String("machine", "desktop", "platform: desktop, super, or a topology like 2x4:nic=1G")
	gpus := flag.Int("gpus", 0, "override GPU count (0 = platform default)")
	mode := flag.String("mode", "proposal", "proposal, openmp, baseline or cuda")
	narrate := flag.Bool("narrate", false, "print one line per runtime event (loader, kernels, comm)")
	kernels := flag.Bool("kernels", false, "print a per-kernel statistics table after the run")
	printArr := flag.String("print", "", "print this array's first elements after the run")
	vet := flag.Bool("vet", false, "run the accvet directive checks before executing; abort on errors")
	vetJSON := flag.Bool("json", false, "with -vet: print diagnostics as a JSON array")
	auditRun := flag.Bool("audit", false, "verify every device copy against a sequential shadow oracle")
	auditTol := flag.Float64("audit-tol", 0, "relative tolerance for float reductions under -audit (0 = default)")
	rf.RegisterSinks(flag.CommandLine)
	rf.RegisterFaults(flag.CommandLine)
	rf.RegisterAblations(flag.CommandLine)
	flag.Var(&sets, "set", "bind a scalar parameter, name=value (repeatable)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: accrun [flags] file.c (use - for stdin)")
		os.Exit(2)
	}

	var src []byte
	var err error
	if name := flag.Arg(0); name == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fatal(err)
	}

	spec, err := cliutil.Machine(*machine, *gpus)
	if err != nil {
		fatal(err)
	}

	var opts rt.Options
	opts.Mode, err = cliutil.Mode(*mode)
	if err != nil {
		fatal(err)
	}
	if *narrate {
		opts.Trace = os.Stderr
	}
	tracer := rf.NewTracer()
	// The CLI defaults to the pipelined schedule: same results and
	// accounting, overlapped makespan. -no-async restores the pure
	// bulk-synchronous timeline.
	rf.ApplyTo(&opts)
	plan, err := rf.FaultPlan()
	if err != nil {
		fatal(err)
	}

	b := ir.NewBindings()
	for _, kv := range sets {
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			fatal(fmt.Errorf("bad -set %q (want name=value)", kv))
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			fatal(fmt.Errorf("bad -set %q: %v", kv, err))
		}
		b.SetScalar(name, f)
	}

	prog, err := core.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *vet {
		vres, err := prog.Vet()
		if err != nil {
			fatal(err)
		}
		display := flag.Arg(0)
		if display == "-" {
			display = "<stdin>"
		} else {
			display = filepath.Base(display)
		}
		if *vetJSON {
			if err := vres.Diags.WriteJSON(os.Stderr, display); err != nil {
				fatal(err)
			}
		} else {
			fmt.Fprint(os.Stderr, vres.Diags.Format(display))
		}
		if vres.Diags.HasErrors() {
			fatal(fmt.Errorf("vet found %d error(s); not running", vres.Diags.Count(diag.Error)))
		}
	}
	res, err := prog.Run(b, core.Config{
		Machine: spec, Options: opts,
		Audit: *auditRun, AuditTolerance: *auditTol, Faults: plan,
		Trace: tracer,
	})
	if err != nil {
		fatal(err)
	}
	if err := rf.WriteSinks(tracer); err != nil {
		fatal(err)
	}
	if rf.TraceFile != "" {
		fmt.Printf("trace: %d spans -> %s\n", len(tracer.Spans()), rf.TraceFile)
	}
	if rf.MetricsFile != "" {
		fmt.Printf("metrics: -> %s\n", rf.MetricsFile)
	}
	fmt.Printf("machine: %s (%d GPUs), mode %s\n", spec.Name, spec.NumGPUs, opts.Mode)
	fmt.Println(res.Report)
	if *narrate {
		printSpecSummary(res.Runtime)
	}
	if *auditRun {
		fmt.Println("audit: all device copies matched the sequential oracle")
	}
	if plan.Active() {
		fmt.Printf("faults: plan %q: %d transfer retries, %d fallbacks\n",
			plan, res.Report.TransferRetries, res.Report.Fallbacks)
		for _, ev := range res.Report.Events {
			fmt.Printf("  [%s] %s: %s\n", ev.Time.Round(time.Microsecond), ev.Kind, ev.Detail)
		}
	}
	if *kernels {
		names := make([]string, 0, len(res.Report.PerKernel))
		for name := range res.Report.PerKernel {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("%-14s %8s %14s %14s %14s\n", "kernel", "launches", "time", "flops", "bytes")
		for _, name := range names {
			ks := res.Report.PerKernel[name]
			fmt.Printf("%-14s %8d %14s %14d %14d\n",
				name, ks.Launches, ks.Time.Round(time.Microsecond),
				ks.Counters.Flops, ks.Counters.BytesRead+ks.Counters.BytesWritten)
		}
	}
	if *printArr != "" {
		a, err := res.Instance.Array(*printArr)
		if err != nil {
			fatal(err)
		}
		n := a.Len()
		if n > 10 {
			n = 10
		}
		fmt.Printf("%s[0:%d] =", *printArr, n)
		for i := int64(0); i < n; i++ {
			switch {
			case a.F32 != nil:
				fmt.Printf(" %g", a.F32[i])
			case a.F64 != nil:
				fmt.Printf(" %g", a.F64[i])
			default:
				fmt.Printf(" %d", a.I32[i])
			}
		}
		fmt.Println()
	}
}

// printSpecSummary reports how much of Phase B ran on the specialized
// executors, with the interpreter fallbacks broken down by runtime
// reason and the outright-rejected kernels by compile-time reason.
func printSpecSummary(r *rt.Runtime) {
	hits, fb := r.SpecHits(), r.SpecFallbacks()
	fmt.Printf("spec: %d chunks specialized, %d interpreter fallbacks\n", hits, fb)
	printReasons := func(label string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		reasons := make([]string, 0, len(m))
		for reason := range m {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		parts := make([]string, len(reasons))
		for i, reason := range reasons {
			parts[i] = fmt.Sprintf("%s=%d", reason, m[reason])
		}
		fmt.Printf("  %s: %s\n", label, strings.Join(parts, " "))
	}
	printReasons("fallback reasons", r.SpecFallbackReasons())
	printReasons("rejected kernels (chunks, by compile reason)", r.SpecRejects())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accrun:", err)
	os.Exit(1)
}
