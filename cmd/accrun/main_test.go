package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "accrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestAccrunSaxpy(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin,
		"-gpus", "2", "-set", "n=10000", "-set", "a=2.0", "-print", "y",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "Desktop Machine (2 GPUs), mode Proposal") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "y[0:10] = 0 0 0") {
		t.Errorf("printed array missing (zero inputs give zero saxpy):\n%s", s)
	}
}

func TestAccrunModesAndMachines(t *testing.T) {
	bin := buildTool(t)
	for _, args := range [][]string{
		{"-machine", "super", "-mode", "openmp"},
		{"-machine", "super", "-mode", "baseline"},
		{"-mode", "cuda"},
	} {
		full := append(args, "-set", "n=1000", "../../examples/testdata/dotprod.c")
		if out, err := exec.Command(bin, full...).CombinedOutput(); err != nil {
			t.Errorf("accrun %v: %v\n%s", args, err, out)
		}
	}
}

func TestAccrunTrace(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-trace", "-set", "n=1000", "-set", "k=4",
		"../../examples/testdata/histogram.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -trace: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "loader: kernel") {
		t.Errorf("trace output missing:\n%s", out)
	}
}

func TestAccrunErrors(t *testing.T) {
	bin := buildTool(t)
	cases := [][]string{
		{"-machine", "vax", "../../examples/testdata/saxpy.c"},
		{"-mode", "quantum", "../../examples/testdata/saxpy.c"},
		{"-set", "noequals", "../../examples/testdata/saxpy.c"},
		{"-set", "n=abc", "../../examples/testdata/saxpy.c"},
		{"/nonexistent.c"},
		{},
	}
	for _, args := range cases {
		if _, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("accrun %v should exit nonzero", args)
		}
	}
}

func TestAccrunKernelsTable(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-kernels", "-set", "n=1000", "-set", "a=1.0",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -kernels: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "launches") || !strings.Contains(s, "main_L") {
		t.Errorf("kernel table missing:\n%s", s)
	}
}
