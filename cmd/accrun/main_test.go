package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "accrun")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestAccrunSaxpy(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin,
		"-gpus", "2", "-set", "n=10000", "-set", "a=2.0", "-print", "y",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "Desktop Machine (2 GPUs), mode Proposal") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "y[0:10] = 0 0 0") {
		t.Errorf("printed array missing (zero inputs give zero saxpy):\n%s", s)
	}
}

func TestAccrunModesAndMachines(t *testing.T) {
	bin := buildTool(t)
	for _, args := range [][]string{
		{"-machine", "super", "-mode", "openmp"},
		{"-machine", "super", "-mode", "baseline"},
		{"-mode", "cuda"},
	} {
		full := append(args, "-set", "n=1000", "../../examples/testdata/dotprod.c")
		if out, err := exec.Command(bin, full...).CombinedOutput(); err != nil {
			t.Errorf("accrun %v: %v\n%s", args, err, out)
		}
	}
}

func TestAccrunNarrate(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-narrate", "-set", "n=1000", "-set", "k=4",
		"../../examples/testdata/histogram.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -narrate: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "loader: kernel") {
		t.Errorf("narration output missing:\n%s", out)
	}
}

func TestAccrunTraceAndMetricsFiles(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	traceFile := filepath.Join(dir, "out.trace.json")
	metricsFile := filepath.Join(dir, "out.metrics.json")
	run := func(tf string) []byte {
		out, err := exec.Command(bin, "-gpus", "2", "-trace", tf, "-metrics", metricsFile,
			"-set", "n=1000", "-set", "k=4",
			"../../examples/testdata/histogram.c").CombinedOutput()
		if err != nil {
			t.Fatalf("accrun -trace FILE: %v\n%s", err, out)
		}
		data, err := os.ReadFile(tf)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	data := run(traceFile)
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
	mdata, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	var mets map[string]json.RawMessage
	if err := json.Unmarshal(mdata, &mets); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if _, ok := mets["counters"]; !ok {
		t.Errorf("metrics file lacks counters:\n%s", mdata)
	}
	// Determinism at the tool level: a second run writes identical bytes.
	traceFile2 := filepath.Join(dir, "out2.trace.json")
	if data2 := run(traceFile2); !bytes.Equal(data, data2) {
		t.Error("trace files differ across identical runs")
	}
}

func TestAccrunErrors(t *testing.T) {
	bin := buildTool(t)
	cases := [][]string{
		{"-machine", "vax", "../../examples/testdata/saxpy.c"},
		{"-mode", "quantum", "../../examples/testdata/saxpy.c"},
		{"-set", "noequals", "../../examples/testdata/saxpy.c"},
		{"-set", "n=abc", "../../examples/testdata/saxpy.c"},
		{"/nonexistent.c"},
		{},
	}
	for _, args := range cases {
		if _, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("accrun %v should exit nonzero", args)
		}
	}
}

func TestAccrunKernelsTable(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-kernels", "-set", "n=1000", "-set", "a=1.0",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -kernels: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "launches") || !strings.Contains(s, "main_L") {
		t.Errorf("kernel table missing:\n%s", s)
	}
}

func TestAccrunAudit(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-audit", "-gpus", "2", "-set", "n=5000", "-set", "a=2.0",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -audit: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "audit: all device copies matched") {
		t.Errorf("audit confirmation missing:\n%s", out)
	}
}

func TestAccrunFaults(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-audit", "-faults", "seed=7,oomgpu=1,oomalloc=2",
		"-gpus", "2", "-set", "n=5000", "-set", "a=2.0",
		"../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accrun -faults: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "faults: plan") {
		t.Errorf("fault summary missing:\n%s", s)
	}
	if !strings.Contains(s, "oom-fallback") {
		t.Errorf("fallback event missing:\n%s", s)
	}

	// A malformed plan must be rejected.
	if _, err := exec.Command(bin, "-faults", "bogus=1",
		"-set", "n=100", "../../examples/testdata/saxpy.c").CombinedOutput(); err == nil {
		t.Error("accrun -faults bogus=1 should exit nonzero")
	}

	// With degradation disabled, an injected OOM is fatal.
	if _, err := exec.Command(bin, "-no-degrade", "-faults", "seed=7,oomgpu=1,oomalloc=2",
		"-gpus", "2", "-set", "n=5000", "-set", "a=2.0",
		"../../examples/testdata/saxpy.c").CombinedOutput(); err == nil {
		t.Error("accrun -no-degrade with an injected OOM should exit nonzero")
	}
}
