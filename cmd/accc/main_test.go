package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles this command once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "accc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestAcccGeneratesCode(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accc: %v\n%s", err, out)
	}
	for _, want := range []string{"__global__", "ACC_STORE(y", "acc_comm_sync"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAcccStats(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-stats", "../../examples/testdata/histogram.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accc -stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reduction arrays:   1") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestAcccStdinAndErrors(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("int n;\nvoid main() { n = 1; }")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("stdin compile: %v\n%s", err, out)
	}

	cmd = exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("void main() { oops = 1; }")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("bad program should exit nonzero")
	}
	if !strings.Contains(string(out), "undeclared") {
		t.Errorf("error output: %s", out)
	}

	if _, err := exec.Command(bin, "/nonexistent.c").CombinedOutput(); err == nil {
		t.Error("missing file should exit nonzero")
	}
	if _, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Error("no arguments should exit nonzero")
	}
}
