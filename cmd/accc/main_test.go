package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles this command once per test binary.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "accc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestAcccGeneratesCode(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "../../examples/testdata/saxpy.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accc: %v\n%s", err, out)
	}
	for _, want := range []string{"__global__", "ACC_STORE(y", "acc_comm_sync"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAcccStats(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-stats", "../../examples/testdata/histogram.c").CombinedOutput()
	if err != nil {
		t.Fatalf("accc -stats: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "reduction arrays:   1") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestAcccStdinAndErrors(t *testing.T) {
	bin := buildTool(t)
	cmd := exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("int n;\nvoid main() { n = 1; }")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("stdin compile: %v\n%s", err, out)
	}

	cmd = exec.Command(bin, "-")
	cmd.Stdin = strings.NewReader("void main() { oops = 1; }")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatal("bad program should exit nonzero")
	}
	if !strings.Contains(string(out), "undeclared") {
		t.Errorf("error output: %s", out)
	}

	if _, err := exec.Command(bin, "/nonexistent.c").CombinedOutput(); err == nil {
		t.Error("missing file should exit nonzero")
	}
	if _, err := exec.Command(bin).CombinedOutput(); err == nil {
		t.Error("no arguments should exit nonzero")
	}
}

// TestAcccVetJSONGolden pins the -vet -json rendering byte for byte:
// the output must be deterministic (sorted diagnostics, stable field
// order) so machine consumers can diff it.
func TestAcccVetJSONGolden(t *testing.T) {
	bin := buildTool(t)
	src := filepath.Join("..", "..", "examples", "vet", "indirect_scatter.c")
	golden, err := os.ReadFile(filepath.Join("..", "..", "examples", "vet", "indirect_scatter.json"))
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for run := 0; run < 3; run++ {
		cmd := exec.Command(bin, "-vet", "-json", src)
		out, err := cmd.Output()
		exitErr, ok := err.(*exec.ExitError)
		if !ok || exitErr.ExitCode() != 1 {
			t.Fatalf("run %d: want exit 1 (the example has an error diagnostic), got %v", run, err)
		}
		if prev != nil && !bytes.Equal(out, prev) {
			t.Fatalf("run %d: -json output not byte-deterministic", run)
		}
		prev = out
	}
	if !bytes.Equal(prev, golden) {
		t.Errorf("-json output changed.\n--- got ---\n%s--- want ---\n%s", prev, golden)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(prev, &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed) != 3 {
		t.Fatalf("want 3 diagnostics, got %d", len(parsed))
	}
	for _, d := range parsed {
		for _, key := range []string{"file", "line", "col", "severity", "code", "message"} {
			if _, ok := d[key]; !ok {
				t.Errorf("diagnostic missing %q: %v", key, d)
			}
		}
	}

	// A clean program renders as the empty array.
	cmd := exec.Command(bin, "-vet", "-json", "-")
	cmd.Stdin = strings.NewReader("int n;\nvoid main() { n = 1; }")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("clean program: %v", err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Errorf("clean program should print [], got %q", out)
	}
}
