// Command accc is the compiler driver: it compiles an OpenACC C file
// (with the multi-GPU extensions) and prints the translator's
// CUDA-like output and the array configuration information, the way
// the paper's prototype emits its generated sources.
//
// Usage:
//
//	accc [-stats] file.c
//	accc -            # read from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"accmulti/internal/core"
)

func main() {
	stats := flag.Bool("stats", false, "print program statistics instead of generated code")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: accc [-stats] file.c (use - for stdin)")
		os.Exit(2)
	}

	var src []byte
	var err error
	if name := flag.Arg(0); name == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "accc:", err)
		os.Exit(1)
	}

	prog, err := core.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "accc:", err)
		os.Exit(1)
	}
	if *stats {
		s := prog.Stats()
		fmt.Printf("parallel loops:     %d\n", s.ParallelLoops)
		fmt.Printf("arrays in loops:    %d\n", s.ArraysInLoops)
		fmt.Printf("localaccess arrays: %d\n", s.LocalAccessArrays)
		fmt.Printf("reduction arrays:   %d\n", s.ReductionArrays)
		return
	}
	fmt.Print(prog.GeneratedSource())
}
