// Command accc is the compiler driver: it compiles an OpenACC C file
// (with the multi-GPU extensions) and prints the translator's
// CUDA-like output and the array configuration information, the way
// the paper's prototype emits its generated sources.
//
// Usage:
//
//	accc [-stats] [-vet [-json]] file.c
//	accc -            # read from stdin
//
// With -vet the accvet pass (internal/analysis) verifies every
// localaccess clause against the inferred access footprint and prints
// its diagnostics instead of the generated code; the exit status is 1
// when any diagnostic is an error. -json renders the diagnostics as a
// byte-deterministic JSON array instead of the text format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"accmulti/internal/core"
)

func main() {
	stats := flag.Bool("stats", false, "print program statistics instead of generated code")
	vet := flag.Bool("vet", false, "verify directives against inferred footprints; exit 1 on errors")
	jsonOut := flag.Bool("json", false, "with -vet: print diagnostics as a JSON array")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: accc [-stats] [-vet [-json]] file.c (use - for stdin)")
		os.Exit(2)
	}

	var src []byte
	var err error
	display := "<stdin>"
	if name := flag.Arg(0); name == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(name)
		display = filepath.Base(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "accc:", err)
		os.Exit(1)
	}

	prog, err := core.Compile(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "accc:", err)
		os.Exit(1)
	}
	if *vet {
		res, err := prog.Vet()
		if err != nil {
			fmt.Fprintln(os.Stderr, "accc:", err)
			os.Exit(1)
		}
		if *jsonOut {
			if err := res.Diags.WriteJSON(os.Stdout, display); err != nil {
				fmt.Fprintln(os.Stderr, "accc:", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(res.Diags.Format(display))
		}
		if res.Diags.HasErrors() {
			os.Exit(1)
		}
		return
	}
	if *stats {
		s := prog.Stats()
		fmt.Printf("parallel loops:     %d\n", s.ParallelLoops)
		fmt.Printf("arrays in loops:    %d\n", s.ArraysInLoops)
		fmt.Printf("localaccess arrays: %d\n", s.LocalAccessArrays)
		fmt.Printf("reduction arrays:   %d\n", s.ReductionArrays)
		return
	}
	fmt.Print(prog.GeneratedSource())
}
