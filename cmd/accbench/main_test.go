package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "accbench")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestAccbenchTable1(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "table1").CombinedOutput()
	if err != nil {
		t.Fatalf("accbench table1: %v\n%s", err, out)
	}
	for _, want := range []string{"Table I", "Desktop Machine", "Supercomputer Node", "Tesla C2075"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAccbenchTinyFig7SingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the functional simulation")
	}
	bin := buildTool(t)
	out, err := exec.Command(bin,
		"-apps", "MD", "-appscale", "MD=0.05", "-verify", "fig7").CombinedOutput()
	if err != nil {
		t.Fatalf("accbench fig7: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Figure 7", "Proposal(2)", "Headline"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestAccbenchBadFlags(t *testing.T) {
	bin := buildTool(t)
	for _, args := range [][]string{
		{"-apps", "NOPE", "fig7"},
		{"-appscale", "garbage", "table1"},
		{"-appscale", "MD=notanumber", "table1"},
	} {
		if _, err := exec.Command(bin, args...).CombinedOutput(); err == nil {
			t.Errorf("accbench %v should exit nonzero", args)
		}
	}
}
