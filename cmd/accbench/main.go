// Command accbench regenerates the paper's evaluation: Table I,
// Table II, Figures 7-9, and the ablation studies.
//
// Usage:
//
//	accbench [-scale f] [-apps MD,KMEANS,BFS] [-verify] [-seed n] [targets...]
//
// Targets: table1 table2 fig7 fig8 fig9 ablations cluster wallclock
// async appstudy node loadtest all (default: all; wallclock, appstudy
// and loadtest are opt-in — they measure real elapsed host time, not
// simulated time, so they only run when asked for; appstudy is the
// BENCH_PR8.json interpreter-vs-specialized Phase-B study, loadtest
// the BENCH_PR9.json warm-vs-cold accd service study sized with
// -lt-workers/-lt-requests; node is the BENCH_PR10.json cluster-topology
// sync-vs-async study). The Proposal configurations run under the pipelined scheduler
// unless -no-async asks for the paper's bulk-synchronous schedule;
// the async target compares the two over the shipped example apps
// (the BENCH_PR6.json study).
// -scale multiplies the per-app default benchmark scales (fractions of
// the paper's input sizes chosen so the functional simulation finishes
// in minutes); -scale with appname=frac pairs in -appscale pins exact
// fractions.
//
// -cpuprofile and -memprofile write pprof profiles of the selected
// benchmark run for host-side performance work:
//
//	accbench -cpuprofile cpu.out fig7
//	go tool pprof cpu.out
//
// -trace and -metrics collect the deterministic runtime trace across
// every measured configuration (one Chrome trace process per
// app/machine/mode point) and the aggregate metrics registry:
//
//	accbench -trace eval.trace.json -metrics eval.metrics.json fig7
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"accmulti/internal/bench"
	"accmulti/internal/cliutil"
)

func main() {
	var rf cliutil.RunFlags
	var (
		scale      = flag.Float64("scale", 1.0, "multiplier on the per-app default bench scales")
		appScale   = flag.String("appscale", "", "per-app input fractions, e.g. MD=1.0,BFS=0.05")
		appsFlag   = flag.String("apps", "", "comma-separated subset of MD,KMEANS,BFS")
		verify     = flag.Bool("verify", false, "verify every run against the Go references")
		seed       = flag.Int64("seed", 0, "input generator seed (0 = default)")
		jsonOut    = flag.Bool("json", false, "emit the selected sections as JSON instead of text")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
		ltWorkers  = flag.Int("lt-workers", 0, "loadtest: concurrent clients (0 = default)")
		ltRequests = flag.Int("lt-requests", 0, "loadtest: requests per phase (0 = default)")
	)
	rf.RegisterAblations(flag.CommandLine)
	rf.RegisterSinks(flag.CommandLine)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := bench.Config{Scale: *scale, Seed: *seed, Verify: *verify, NoSpecialize: rf.NoSpecialize, Async: !rf.NoAsync}
	if tracer := rf.NewTracer(); tracer != nil {
		cfg.Trace = tracer
		defer func() {
			if err := rf.WriteSinks(tracer); err != nil {
				fatal(err)
			}
		}()
	}
	if *appsFlag != "" {
		cfg.Apps = strings.Split(*appsFlag, ",")
	}
	if *appScale != "" {
		cfg.AppScale = map[string]float64{}
		for _, kv := range strings.Split(*appScale, ",") {
			name, val, ok := strings.Cut(kv, "=")
			if !ok {
				fatal(fmt.Errorf("bad -appscale entry %q (want APP=fraction)", kv))
			}
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				fatal(fmt.Errorf("bad -appscale entry %q: %v", kv, err))
			}
			cfg.AppScale[name] = f
		}
	}

	targets := flag.Args()
	if len(targets) == 0 {
		targets = []string{"all"}
	}
	want := map[string]bool{}
	for _, t := range targets {
		want[t] = true
	}
	all := want["all"]

	var (
		figRes    *bench.Results
		table2    []bench.Table2Row
		ablations []bench.AblationRow
		cluster   []bench.ClusterRow
		wallclock []bench.WallClockRow
		asyncRows []bench.AsyncRow
		appstudy  []bench.AppStudyRow
		nodeRows  []bench.NodeRow
		loadtest  *bench.LoadTestReport
		err       error
	)
	if all || want["table2"] {
		if table2, err = bench.Table2(cfg); err != nil {
			fatal(err)
		}
	}
	if all || want["fig7"] || want["fig8"] || want["fig9"] {
		if figRes, err = bench.RunAll(cfg); err != nil {
			fatal(err)
		}
	}
	if all || want["ablations"] {
		if ablations, err = bench.Ablations(cfg); err != nil {
			fatal(err)
		}
	}
	if all || want["cluster"] {
		if cluster, err = bench.ClusterStudy(cfg); err != nil {
			fatal(err)
		}
	}
	if want["wallclock"] { // opt-in: measures real time, not simulated
		if wallclock, err = bench.WallClock(cfg); err != nil {
			fatal(err)
		}
	}
	if all || want["async"] {
		if asyncRows, err = bench.AsyncStudy(cfg); err != nil {
			fatal(err)
		}
	}
	if want["appstudy"] { // opt-in: measures real time, not simulated
		if appstudy, err = bench.AppStudy(cfg); err != nil {
			fatal(err)
		}
	}
	if all || want["node"] {
		if nodeRows, err = bench.NodeStudy(cfg); err != nil {
			fatal(err)
		}
	}
	if want["loadtest"] { // opt-in: measures real time, not simulated
		ltCfg := bench.LoadTestConfig{Workers: *ltWorkers, Requests: *ltRequests, Seed: *seed}
		if loadtest, err = bench.LoadTest(ltCfg); err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		if err := bench.WriteJSON(os.Stdout, figRes, table2, ablations, cluster, wallclock, asyncRows, appstudy, nodeRows, loadtest); err != nil {
			fatal(err)
		}
		return
	}

	if all || want["table1"] {
		bench.RenderTable1(os.Stdout)
		fmt.Println()
	}
	if table2 != nil {
		bench.RenderTable2(os.Stdout, table2)
		fmt.Println()
	}
	if figRes != nil {
		if all || want["fig7"] {
			bench.RenderFig7(os.Stdout, figRes)
			fmt.Println()
			head := figRes.Headline()
			fmt.Printf("Headline: best Proposal speedups vs OpenMP: %.2fx (%s), %.2fx (%s)\n\n",
				head["Desktop Machine"], "Desktop Machine",
				head["Supercomputer Node"], "Supercomputer Node")
		}
		if all || want["fig8"] {
			bench.RenderFig8(os.Stdout, figRes)
			fmt.Println()
		}
		if all || want["fig9"] {
			bench.RenderFig9(os.Stdout, figRes)
			fmt.Println()
		}
	}
	if ablations != nil {
		bench.RenderAblations(os.Stdout, ablations)
		fmt.Println()
	}
	if cluster != nil {
		bench.RenderCluster(os.Stdout, cluster)
		fmt.Println()
	}
	if wallclock != nil {
		bench.RenderWallClock(os.Stdout, wallclock)
		fmt.Println()
	}
	if asyncRows != nil {
		bench.RenderAsync(os.Stdout, asyncRows)
		fmt.Println()
	}
	if appstudy != nil {
		bench.RenderAppStudy(os.Stdout, appstudy)
	}
	if nodeRows != nil {
		bench.RenderNode(os.Stdout, nodeRows)
		fmt.Println()
	}
	if loadtest != nil {
		bench.RenderLoadTest(os.Stdout, loadtest)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "accbench:", err)
	os.Exit(1)
}
