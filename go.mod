module accmulti

go 1.22
