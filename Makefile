# Convenience targets for the multi-GPU OpenACC reproduction.

GO ?= go

.PHONY: all build vet lint test test-short cover bench bench-quick bench-baseline bench-pr6 bench-pr8 bench-pr9 bench-pr10 eval eval-json examples clean check fuzz-smoke accvet trace-check loadtest-smoke

# Optional linters: used when present on PATH, skipped (with a pinned
# install hint) when absent — `make lint` must work in a hermetic
# checkout with only the Go toolchain.
STATICCHECK_VERSION ?= 2025.1
GOVULNCHECK_VERSION ?= v1.1.4

all: build vet test

# check is the pre-PR gate: lint (go vet plus the optional linters when
# installed), the plain test suite, the race
# detector over the suite (the runtime launches kernels concurrently
# across simulated GPUs; -short skips the full-scale app inputs, which
# take ~10x longer under the detector), the trace golden/invariance
# gate, the accvet directive checks over the shipped examples and the
# audited random-program corpus, and a short fuzz smoke over the
# frontend fuzzer, the audited random-program fuzzer, the
# vet-vs-auditor cross-check fuzzer, the specialized-vs-interpreted
# differential fuzzer, the trace well-formedness fuzzer, the
# async-vs-sync schedule-equivalence fuzzer and the static-vs-dynamic
# dependence cross-check fuzzer.
check: lint
	$(GO) test ./...
	$(GO) test -race -short -timeout 1200s ./...
	$(MAKE) trace-check
	$(MAKE) bench-quick
	$(MAKE) loadtest-smoke
	$(MAKE) accvet
	$(MAKE) fuzz-smoke

# loadtest-smoke is the fast correctness pass over the accd load-test
# harness: a small concurrent run of the mixed corpus where every
# response code, cache verdict and phase invariant is asserted, plus
# the serve equivalence check (concurrent responses byte-identical to
# the serial baseline).
loadtest-smoke:
	$(GO) test -run 'TestLoadTestSmoke' ./internal/bench
	$(GO) test -run 'TestServeEquivalenceUnderLoad' ./internal/serve

# trace-check pins the observability layer: the committed golden
# Chrome traces (regenerate with -update-trace-goldens), the
# metrics-vs-report-vet cross-checks (including the multi-node
# ACCV007-vs-NIC-tag one), the structural overlap gates on
# the pipelined schedule, the report/byte invariance of tracing
# across option matrices, GOMAXPROCS=1, and repeated async runs, the
# NIC-lane discipline on cluster topologies, and the degenerate
# 1xN == N topology equivalence (arrays, reports and trace bytes).
trace-check:
	$(GO) test -run 'TestTraceGolden|TestTraceMetricsCrossCheck|TestMultiNodeTraceMetricsCrossCheck|TestAsyncOverlapObserved' ./internal/core
	$(GO) test -run 'TestTraceReportInvariance|TestTraceGOMAXPROCS1ByteStability|TestTraceByteStabilityStress|TestTraceStructureSeedCorpus|TestAsyncByteStabilityStress|TestMultiNodeTraceLanes|TestNodeLossKeepsTraceWellFormed|TestDegenerateTopologyEquivalence' ./internal/rt

# accvet runs the directive-verification pass the way CI consumes it:
# accc -vet must accept every known-good shipped program, and the
# golden/corpus tests pin its diagnostics (including the deliberately
# broken programs under examples/vet).
accvet:
	for f in examples/testdata/*.c; do $(GO) run ./cmd/accc -vet $$f || exit 1; done
	$(GO) test -run 'TestVetGoldenDiagnostics' ./internal/core
	$(GO) test -run 'TestVetCleanOnAuditedCorpus|TestVetCrossCheckSeedCorpus' ./internal/rt

fuzz-smoke:
	$(GO) test -fuzz=FuzzParseProgram -fuzztime=5s -run='^$$' ./internal/cc
	$(GO) test -fuzz=FuzzAuditedRandomPrograms -fuzztime=5s -run='^$$' ./internal/rt
	$(GO) test -fuzz=FuzzVetCrossCheck -fuzztime=5s -run='^$$' ./internal/rt
	$(GO) test -fuzz=FuzzSpecializedVsInterp -fuzztime=5s -run='^$$' ./internal/rt
	$(GO) test -fuzz=FuzzTraceWellFormed -fuzztime=5s -run='^$$' ./internal/rt
	$(GO) test -fuzz=FuzzAsyncVsSyncSchedule -fuzztime=5s -run='^$$' ./internal/rt
	$(GO) test -fuzz=FuzzDepCrossCheck -fuzztime=5s -run='^$$' ./internal/rt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint is the static-analysis gate: go vet always runs; staticcheck and
# govulncheck run only when their binaries are already installed (no
# network fetches from the build).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# The full benchmark matrix as testing.B benches (one per table/figure).
bench:
	$(GO) test -bench=. -benchmem ./...

# bench-quick is the host-performance regression gate: the steady-state
# allocation-budget assertions (loader paths, specialized launches, and
# the tracing-disabled launch path, which must add zero allocations),
# the pipelined-scheduler speedup gate (>=1.2x on the halo-bound
# stencil, with report equivalence modulo time), the paper-app gate
# (>=2x Phase-B on MD, KMEANS and BFS, specialized vs interpreter,
# results verified both sides), plus one iteration of
# each wall-clock gate benchmark (legacy-vs-optimized loader,
# replicated-write diff, plan resolution, and the Phase-B
# interpreter-vs-specialized pairs), the accd program-cache gate
# (warm-cache throughput >= 5x cold-cache on the mixed service
# corpus), and the accd equivalence gate (256-way concurrent responses
# bit-identical to serial, under the race detector). Cheap enough to
# run in every `make check`. The multi-node speedup gate holds the
# NIC-aware async schedule to >=1.2x over sync on the halo-bound
# 2-node stencil (report equivalence modulo time included).
bench-quick:
	$(GO) test -run 'TestSteadyStateAllocBudget|TestSpecLaunchSteadyStateAllocBudget|TestTraceDisabledAllocBudget|TestPhaseBSpeedupGate|TestAsyncSpeedupGate|TestMultiNodeSpeedupGate|TestPaperAppSpeedupGate' \
		-bench 'BenchmarkIteratedStencilLoader|BenchmarkReplicatedWriteDiff|BenchmarkLaunchPlanResolve|BenchmarkPhaseBSaxpy|BenchmarkPhaseBStencil' \
		-benchtime=1x -benchmem ./internal/rt
	$(GO) test -run 'TestLoadTestCacheGate' ./internal/bench
	$(GO) test -race -run 'TestServeEquivalenceUnderLoad|TestProgramReentrantUnderRace' ./internal/serve ./internal/core

# bench-baseline regenerates the committed wall-clock baseline
# (BENCH_PR4.json): end-to-end elapsed-time measurements with the host
# optimizations (including kernel specialization) on vs off, with
# result verification and the report-invariance bit asserted per
# workload.
bench-baseline:
	$(GO) run ./cmd/accbench -json -verify wallclock > BENCH_PR4.json

# bench-pr6 regenerates the committed sync-vs-async study
# (BENCH_PR6.json): simulated makespans of the five shipped example
# apps under the bulk-synchronous and pipelined schedules, with the
# report-equivalence bit asserted per app.
bench-pr6:
	$(GO) run ./cmd/accbench -json async > BENCH_PR6.json

# bench-pr8 regenerates the committed interpreter-vs-specialized study
# (BENCH_PR8.json): real Phase-B wall clock on the paper apps plus two
# synthetic controls, with the specialized executors and launch fusion
# on vs the instrumented interpreter, result verification, and the
# report-invariance bit asserted per workload.
bench-pr8:
	$(GO) run ./cmd/accbench -json -verify appstudy > BENCH_PR8.json

# bench-pr9 regenerates the committed accd service study
# (BENCH_PR9.json): throughput and latency percentiles of the
# compile-and-run daemon under a mixed concurrent workload, cold
# (every request compiles) vs warm (every request hits the
# content-hash program cache). The headline is the warm/cold
# throughput ratio — the structural win of the cache.
bench-pr9:
	$(GO) run ./cmd/accbench -json loadtest > BENCH_PR9.json

# bench-pr10 regenerates the committed node study (BENCH_PR10.json):
# simulated makespans of the shipped example apps on cluster
# topologies (1x3 degenerate control, 2x2, 2x3) under the
# bulk-synchronous and NIC-aware pipelined schedules, with the
# report-equivalence bit asserted per point.
bench-pr10:
	$(GO) run ./cmd/accbench -json node > BENCH_PR10.json

# Regenerate the paper's evaluation (Tables I-II, Figs 7-9, ablations,
# cluster study) with result verification. -no-async keeps the
# reported times on the paper's bulk-synchronous schedule.
eval:
	$(GO) run ./cmd/accbench -no-async -verify all

eval-json:
	$(GO) run ./cmd/accbench -no-async -json all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/md
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/bfs
	$(GO) run ./examples/stencil1d
	$(GO) run ./examples/ablation

clean:
	$(GO) clean ./...
