# Convenience targets for the multi-GPU OpenACC reproduction.

GO ?= go

.PHONY: all build vet test test-short cover bench eval eval-json examples clean check fuzz-smoke

all: build vet test

# check is the pre-PR gate: vet, the plain test suite, the race
# detector over the suite (the runtime launches kernels concurrently
# across simulated GPUs; -short skips the full-scale app inputs, which
# take ~10x longer under the detector), and a short fuzz smoke over
# the frontend fuzzer and the audited random-program fuzzer.
check: vet
	$(GO) test ./...
	$(GO) test -race -short -timeout 1200s ./...
	$(MAKE) fuzz-smoke

fuzz-smoke:
	$(GO) test -fuzz=FuzzParseProgram -fuzztime=5s -run='^$$' ./internal/cc
	$(GO) test -fuzz=FuzzAuditedRandomPrograms -fuzztime=5s -run='^$$' ./internal/rt

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# The full benchmark matrix as testing.B benches (one per table/figure).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (Tables I-II, Figs 7-9, ablations,
# cluster study) with result verification.
eval:
	$(GO) run ./cmd/accbench -verify all

eval-json:
	$(GO) run ./cmd/accbench -json all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/md
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/bfs
	$(GO) run ./examples/stencil1d
	$(GO) run ./examples/ablation

clean:
	$(GO) clean ./...
