# Convenience targets for the multi-GPU OpenACC reproduction.

GO ?= go

.PHONY: all build vet test test-short cover bench eval eval-json examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

cover:
	$(GO) test -cover ./...

# The full benchmark matrix as testing.B benches (one per table/figure).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's evaluation (Tables I-II, Figs 7-9, ablations,
# cluster study) with result verification.
eval:
	$(GO) run ./cmd/accbench -verify all

eval-json:
	$(GO) run ./cmd/accbench -json all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/md
	$(GO) run ./examples/kmeans
	$(GO) run ./examples/bfs
	$(GO) run ./examples/stencil1d
	$(GO) run ./examples/ablation

clean:
	$(GO) clean ./...
